"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, Interrupt, SimulationError


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_clock():
    eng = Engine()
    times = []

    def proc(eng):
        yield eng.timeout(3.5)
        times.append(eng.now)

    eng.spawn(proc(eng))
    eng.run()
    assert times == [3.5]


def test_processes_interleave_in_time_order():
    eng = Engine()
    order = []

    def proc(eng, name, delay):
        yield eng.timeout(delay)
        order.append(name)

    eng.spawn(proc(eng, "late", 10.0))
    eng.spawn(proc(eng, "early", 1.0))
    eng.spawn(proc(eng, "mid", 5.0))
    eng.run()
    assert order == ["early", "mid", "late"]


def test_equal_timestamps_fifo_order():
    eng = Engine()
    order = []

    def proc(eng, name):
        yield eng.timeout(1.0)
        order.append(name)

    for i in range(5):
        eng.spawn(proc(eng, i))
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value_propagates():
    eng = Engine()

    def child(eng):
        yield eng.timeout(2.0)
        return 42

    def parent(eng, out):
        value = yield eng.spawn(child(eng))
        out.append(value)

    out = []
    eng.spawn(parent(eng, out))
    eng.run()
    assert out == [42]


def test_event_succeed_wakes_waiter_with_value():
    eng = Engine()
    got = []
    evt = eng.event()

    def waiter(eng):
        value = yield evt
        got.append((eng.now, value))

    def firer(eng):
        yield eng.timeout(7.0)
        evt.succeed("payload")

    eng.spawn(waiter(eng))
    eng.spawn(firer(eng))
    eng.run()
    assert got == [(7.0, "payload")]


def test_event_fires_only_once():
    eng = Engine()
    evt = eng.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_raises_in_waiter():
    eng = Engine()
    evt = eng.event()
    caught = []

    def waiter(eng):
        try:
            yield evt
        except ValueError as exc:
            caught.append(str(exc))

    eng.spawn(waiter(eng))
    evt.fail(ValueError("boom"))
    eng.run()
    assert caught == ["boom"]


def test_late_event_subscription_still_delivers():
    eng = Engine()
    evt = eng.event()
    evt.succeed("early")
    got = []

    def waiter(eng):
        value = yield evt
        got.append(value)

    eng.spawn(waiter(eng))
    eng.run()
    assert got == ["early"]


def test_all_of_collects_values():
    eng = Engine()
    results = []

    def child(eng, delay, value):
        yield eng.timeout(delay)
        return value

    def parent(eng):
        procs = [eng.spawn(child(eng, d, d * 10)) for d in (3.0, 1.0, 2.0)]
        values = yield eng.all_of(procs)
        results.append((eng.now, values))

    eng.spawn(parent(eng))
    eng.run()
    assert results == [(3.0, [30.0, 10.0, 20.0])]


def test_any_of_returns_first():
    eng = Engine()
    results = []

    def child(eng, delay, value):
        yield eng.timeout(delay)
        return value

    def parent(eng):
        procs = [eng.spawn(child(eng, d, d) ) for d in (3.0, 1.0, 2.0)]
        index, value = yield eng.any_of(procs)
        results.append((eng.now, index, value))

    eng.spawn(parent(eng))
    eng.run()
    assert results == [(1.0, 1, 1.0)]


def test_run_until_stops_clock_at_bound():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(100.0)

    eng.spawn(proc(eng))
    eng.run(until=40.0)
    assert eng.now == 40.0
    assert eng.pending_events == 1


def test_run_until_fired_returns_value():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(5.0)
        return "done"

    handle = eng.spawn(proc(eng))
    assert eng.run_until_fired(handle) == "done"
    assert eng.now == 5.0


def test_run_until_fired_raises_when_unreachable():
    eng = Engine()
    evt = eng.event()
    with pytest.raises(SimulationError):
        eng.run_until_fired(evt)


def test_interrupt_delivers_cause():
    eng = Engine()
    log = []

    def sleeper(eng):
        try:
            yield eng.timeout(1000.0)
        except Interrupt as intr:
            log.append((eng.now, intr.cause))

    def killer(eng, victim):
        yield eng.timeout(4.0)
        victim.interrupt("stop")

    victim = eng.spawn(sleeper(eng))
    eng.spawn(killer(eng, victim))
    eng.run()
    assert log == [(4.0, "stop")]


def test_interrupted_process_ignores_stale_wakeup():
    eng = Engine()
    log = []

    def sleeper(eng):
        try:
            yield eng.timeout(5.0)
            log.append("woke")
        except Interrupt:
            log.append("interrupted")
            yield eng.timeout(100.0)
            log.append("slept-again")

    def killer(eng, victim):
        yield eng.timeout(1.0)
        victim.interrupt()

    victim = eng.spawn(sleeper(eng))
    eng.spawn(killer(eng, victim))
    eng.run()
    assert log == ["interrupted", "slept-again"]


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.timeout(-1.0)


def test_call_at_and_call_after():
    eng = Engine()
    log = []
    eng.call_at(10.0, lambda: log.append(("at", eng.now)))
    eng.call_after(3.0, lambda: log.append(("after", eng.now)))
    eng.run()
    assert log == [("after", 3.0), ("at", 10.0)]


def test_call_at_in_past_rejected():
    eng = Engine()
    eng.call_after(5.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.call_at(1.0, lambda: None)


def test_yielding_non_event_is_error():
    eng = Engine()

    def bad(eng):
        yield 42

    eng.spawn(bad(eng))
    with pytest.raises(SimulationError):
        eng.run()


def test_run_max_steps_bounds_dispatch():
    eng = Engine()
    fired = []

    def proc(eng, i):
        yield eng.timeout(float(i))
        fired.append(i)

    for i in range(10):
        eng.spawn(proc(eng, i))
    eng.run(max_steps=5)
    assert len(fired) < 10


def test_pending_events_counts_heap():
    eng = Engine()
    assert eng.pending_events == 0
    eng.call_after(5.0, lambda: None)
    assert eng.pending_events == 1
    eng.run()
    assert eng.pending_events == 0


def test_pending_events_counts_immediate_lane():
    eng = Engine()
    evt = eng.event()
    evt.succeed()  # queues the dispatch on the zero-delay lane
    assert eng.pending_events == 1
    eng.run()
    assert eng.pending_events == 0


def test_run_rejects_reentrancy():
    eng = Engine()
    errors = []

    def proc(eng):
        yield eng.timeout(1.0)
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(str(exc))

    eng.spawn(proc(eng))
    eng.run()
    assert errors == ["engine is already running"]


def test_run_until_fired_rejects_reentrancy():
    eng = Engine()
    errors = []

    def proc(eng):
        yield eng.timeout(1.0)
        try:
            eng.run_until_fired(eng.event())
        except SimulationError as exc:
            errors.append(str(exc))

    eng.spawn(proc(eng))
    eng.run()
    assert errors == ["engine is already running"]


def test_run_until_fired_counts_steps():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.0)
        yield eng.timeout(1.0)
        return "fin"

    handle = eng.spawn(proc(eng))
    before = eng.step_count
    assert eng.run_until_fired(handle) == "fin"
    assert eng.step_count > before


def test_zero_delay_events_keep_fifo_order():
    eng = Engine()
    order = []

    def waiter(eng, name, evt):
        yield evt
        order.append(name)

    events = [eng.event() for _ in range(4)]
    for i, evt in enumerate(events):
        eng.spawn(waiter(eng, i, evt))

    def trigger(eng):
        yield eng.timeout(1.0)
        for evt in events:
            evt.succeed()

    eng.spawn(trigger(eng))
    eng.run()
    assert order == [0, 1, 2, 3]


def test_heap_entries_at_now_precede_immediate_lane():
    # A timer scheduled from t=0 to land at t=1 was scheduled *before*
    # anything that gets queued with zero delay once t=1 is reached, so
    # it must dispatch first — same order the single-heap engine gave.
    eng = Engine()
    order = []
    wake = eng.event()

    def first(eng):
        yield eng.timeout(1.0)
        order.append("first")
        wake.succeed()  # zero-delay: queued behind the t=1 timer below

    def second(eng):
        yield eng.timeout(1.0)
        order.append("second")

    def waiter(eng):
        yield wake
        order.append("waiter")

    eng.spawn(first(eng))
    eng.spawn(second(eng))
    eng.spawn(waiter(eng))
    eng.run()
    assert order == ["first", "second", "waiter"]


def test_zero_delay_resume_does_not_advance_clock():
    eng = Engine()
    times = []

    def proc(eng):
        yield eng.timeout(1.5)
        evt = eng.event()
        evt.succeed()
        yield evt
        times.append(eng.now)

    eng.spawn(proc(eng))
    eng.run()
    assert times == [1.5]
