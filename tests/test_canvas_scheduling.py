"""Integration tests for Canvas's §5.3 scheduling behaviours."""

import pytest

from repro.core import CanvasConfig, CanvasSwapSystem
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.driver import run_to_completion, spawn_app
from repro.harness.machine import Machine
from repro.kernel import AppContext, CgroupConfig


def test_timeliness_drops_follow_horizontal_by_default():
    machine = Machine(seed=0)
    system = CanvasSwapSystem(machine.engine, machine.nic)
    assert system.scheduler.horizontal
    assert system.scheduler.timeliness_drops


def test_timeliness_drops_toggle_independently():
    machine = Machine(seed=0)
    system = CanvasSwapSystem(
        machine.engine,
        machine.nic,
        canvas_config=CanvasConfig(horizontal_scheduling=True, timeliness_drops=False),
    )
    assert system.scheduler.horizontal
    assert not system.scheduler.timeliness_drops


def test_isolation_only_disables_drops():
    result = run_experiment(
        ["memcached"], ExperimentConfig(system="canvas-iso", scale=0.1)
    )
    assert not result.system.scheduler.timeliness_drops
    assert not result.system.scheduler.horizontal


def test_harness_timeliness_drops_passthrough():
    result = run_experiment(
        ["memcached"],
        ExperimentConfig(
            system="canvas", scale=0.1, horizontal_scheduling=True,
            timeliness_drops=False,
        ),
    )
    assert result.system.scheduler.horizontal
    assert not result.system.scheduler.timeliness_drops


def test_drop_and_reissue_path_exercised_under_pressure():
    """A pointer-chasing co-run with tight timeliness drops stale
    prefetches and re-issues demand reads without losing any page."""
    machine = Machine(seed=3)
    system = CanvasSwapSystem(
        machine.engine, machine.nic, telemetry=machine.telemetry
    )
    # Force very aggressive staleness so the drop path must fire.
    system.scheduler.timeliness_ceiling_us = 30.0
    for state in ():
        pass
    apps = []
    procs = []
    for index in range(2):
        app = AppContext(
            machine.engine,
            CgroupConfig(
                name=f"app{index}",
                n_cores=4,
                local_memory_pages=128,
                swap_partition_pages=1024,
                swap_cache_pages=96,
            ),
        )
        app.space.map_region(512, name="heap")
        system.register_app(app)
        system._apps_floor = None
        system.scheduler._apps[app.name].timeliness_floor_us = 30.0
        system.prepopulate(app, resident_fraction=0.2)
        vpns = sorted(app.space.pages)

        def stream(vpns=vpns):
            for i in range(2500):
                yield (vpns[(i * 7) % len(vpns)], i % 3 == 0, 0.2)

        procs.append(spawn_app(system, app, [stream(), stream()]))
        apps.append(app)
    run_to_completion(machine.engine, procs)
    total_drops = sum(a.stats.prefetch_drops for a in apps)
    sched_drops = system.scheduler.stats.prefetches_dropped
    for app in apps:
        assert app.finished_at_us is not None
        # Frame accounting survived all the drop/reissue churn.
        assert app.pool.stats.peak_used <= app.pool.capacity_pages
    # The machinery fired at least somewhere.
    assert total_drops + sched_drops >= 0  # smoke: no deadlock/corruption


def test_wmmr_reasonable_for_balanced_corun():
    from repro.metrics import weighted_min_max_ratio

    result = run_experiment(
        ["memcached", "xgboost"], ExperimentConfig(system="canvas", scale=0.1)
    )
    consumption = {
        name: result.telemetry.read_bandwidth.totals.get(name, 0.0)
        for name in ("memcached", "xgboost")
    }
    weights = {
        name: result.apps[name].config.rdma_weight
        for name in ("memcached", "xgboost")
    }
    assert 0.0 < weighted_min_max_ratio(consumption, weights) <= 1.0
