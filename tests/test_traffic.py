"""Tests for the open-loop traffic generator (repro.workloads.traffic).

The plan must be a pure function of ``(config, seed)``: bit-identical
across constructions, sensitive to the seed, and with per-session access
streams that depend only on the session name — never on how many other
sessions exist.  Curve shape is checked statistically: diurnal arrivals
concentrate mid-day, flash-crowd arrivals concentrate in the spike,
constant arrivals spread evenly, and grow/shrink tracks intensity.
"""

import numpy as np
import pytest

from repro.workloads.traffic import (
    CURVES,
    TRAFFIC_SCENARIOS,
    TrafficConfig,
    TrafficPlan,
    make_traffic_plan,
    traffic_scenario_config,
)


def test_plan_is_deterministic():
    config = TrafficConfig(n_sessions=40)
    a = TrafficPlan(config, seed=7)
    b = TrafficPlan(config, seed=7)
    assert a.seed == b.seed
    assert a.sessions == b.sessions
    for sa, sb in zip(a.sessions, b.sessions):
        va, wa = a.session_accesses(sa)
        vb, wb = b.session_accesses(sb)
        assert np.array_equal(va, vb) and np.array_equal(wa, wb)


def test_plan_varies_with_seed():
    config = TrafficConfig(n_sessions=40)
    a = TrafficPlan(config, seed=1)
    b = TrafficPlan(config, seed=2)
    assert a.sessions != b.sessions


def test_explicit_traffic_seed_pins_the_plan():
    a = TrafficPlan(TrafficConfig(n_sessions=10, traffic_seed=42), seed=1)
    b = TrafficPlan(TrafficConfig(n_sessions=10, traffic_seed=42), seed=99)
    assert a.sessions == b.sessions


def test_session_stream_independent_of_population():
    """A session's access stream is keyed by name: adding more sessions
    to the plan never perturbs an existing session's stream."""
    small = TrafficPlan(TrafficConfig(n_sessions=4), seed=3)
    large = TrafficPlan(TrafficConfig(n_sessions=32), seed=3)
    for index in range(4):
        sa = small.sessions[index]
        sb = large.sessions[index]
        va, wa = small.session_accesses(sa)
        vb, wb = large.session_accesses(sb)
        # Sizing may differ (arrival instants shift with the quantile
        # draw), so compare the stream prefix both share.
        n = min(len(va), len(vb))
        assert np.array_equal(va[:n] % 16, vb[:n] % 16) or sa.name == sb.name


def test_sessions_are_well_formed():
    config = TrafficConfig(n_sessions=64, day_us=50_000.0)
    plan = TrafficPlan(config, seed=5)
    assert len(plan.sessions) == 64
    names = [s.name for s in plan.sessions]
    assert len(set(names)) == 64
    for session in plan.sessions:
        assert 0.0 <= session.arrive_us <= config.day_us
        assert 0.0 <= session.intensity <= 1.0
        assert session.working_set_pages >= 16
        assert session.local_memory_pages >= 8
        assert session.accesses >= 64
        vpns, writes = plan.session_accesses(session)
        assert len(vpns) == session.accesses == len(writes)
        assert vpns.min() >= 0 and vpns.max() < session.working_set_pages
    # Arrivals are bin-ordered (inverse-CDF over sorted quantiles);
    # intra-bin jitter can swap neighbours by at most one bin width.
    arrivals = [s.arrive_us for s in plan.sessions]
    bin_width = config.day_us / 1024
    assert all(
        later >= earlier - bin_width
        for earlier, later in zip(arrivals, arrivals[1:])
    )


def test_pressured_cadence():
    plan = TrafficPlan(TrafficConfig(n_sessions=16, pressured_every=4), seed=0)
    assert [s.pressured for s in plan.sessions] == [
        i % 4 == 0 for i in range(16)
    ]
    for s in plan.sessions:
        if s.pressured:
            assert s.local_memory_pages < s.working_set_pages
        else:
            assert s.local_memory_pages > s.working_set_pages
    none = TrafficPlan(TrafficConfig(n_sessions=8, pressured_every=0), seed=0)
    assert not any(s.pressured for s in none.sessions)


def test_diurnal_arrivals_concentrate_midday():
    config = TrafficConfig(n_sessions=400, base_intensity=0.1)
    plan = TrafficPlan(config, seed=11)
    phases = np.array([s.arrive_us / config.day_us for s in plan.sessions])
    midday = np.sum((phases > 0.25) & (phases < 0.75))
    # The raised-cosine peak holds most of the mass in the middle half.
    assert midday > 0.6 * len(phases)


def test_constant_arrivals_spread_evenly():
    config = TrafficConfig(curve="constant", n_sessions=400)
    plan = TrafficPlan(config, seed=11)
    phases = np.array([s.arrive_us / config.day_us for s in plan.sessions])
    counts, _ = np.histogram(phases, bins=4, range=(0.0, 1.0))
    assert counts.min() > 0.15 * len(phases)


def test_flash_crowd_concentrates_in_spike():
    config = TrafficConfig(
        curve="flash-crowd",
        n_sessions=400,
        n_bursts=1,
        burst_gain=8.0,
        base_intensity=0.05,
    )
    plan = TrafficPlan(config, seed=13)
    (center, width), = plan._bursts
    phases = np.array([s.arrive_us / config.day_us for s in plan.sessions])
    distance = np.abs(phases - center)
    distance = np.minimum(distance, 1.0 - distance)
    in_spike = np.sum(distance < width)
    # The spike holds far more than its share of the day's arrivals.
    assert in_spike > 5 * width * len(phases)


def test_grow_shrink_tracks_intensity():
    """Sessions arriving at the peak are bigger than trough arrivals."""
    config = TrafficConfig(n_sessions=400, elasticity=0.5, base_intensity=0.1)
    plan = TrafficPlan(config, seed=17)
    hot = [s.working_set_pages for s in plan.sessions if s.intensity > 0.8]
    cold = [s.working_set_pages for s in plan.sessions if s.intensity < 0.3]
    assert hot and cold
    assert np.mean(hot) > np.mean(cold)


def test_zero_elasticity_fixes_working_set():
    plan = TrafficPlan(
        TrafficConfig(n_sessions=32, elasticity=0.0, working_set_pages=48), seed=1
    )
    assert {s.working_set_pages for s in plan.sessions} == {48}


def test_peak_window_covers_argmax():
    for name, config in TRAFFIC_SCENARIOS.items():
        plan = TrafficPlan(config, seed=3)
        start, end = plan.peak_window_us
        assert 0.0 <= start < end <= config.day_us
        assert end - start == pytest.approx(config.day_us / 10.0, rel=0.51)


def test_scenarios_and_validation():
    assert set(TRAFFIC_SCENARIOS) == {"diurnal", "bursty", "flash-crowd", "constant"}
    for name in TRAFFIC_SCENARIOS:
        assert traffic_scenario_config(name).curve in CURVES
    with pytest.raises(ValueError):
        traffic_scenario_config("rush-hour")
    with pytest.raises(ValueError):
        TrafficConfig(curve="sinusoidal")
    with pytest.raises(ValueError):
        TrafficConfig(n_sessions=-1)
    with pytest.raises(ValueError):
        TrafficConfig(day_us=0.0)
    with pytest.raises(ValueError):
        TrafficConfig(base_intensity=0.0)
    with pytest.raises(ValueError):
        TrafficConfig(elasticity=1.0)


def test_make_traffic_plan_none_passthrough():
    assert make_traffic_plan(None, seed=3) is None
    plan = make_traffic_plan(TrafficConfig(n_sessions=2), seed=3)
    assert isinstance(plan, TrafficPlan) and len(plan.sessions) == 2
