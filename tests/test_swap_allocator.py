"""Unit tests for the swap-entry allocator family."""

import numpy as np
import pytest

from repro.sim import Engine
from repro.swap import (
    BatchAllocator,
    FreeListAllocator,
    Linux514Allocator,
    PerCoreClusterAllocator,
    SwapPartition,
)


def run_allocations(engine, allocator, n, n_threads=1):
    """Spawn n_threads processes doing n allocations each; return entries."""
    results = []

    def worker(engine, core_id):
        got = []
        for _ in range(n):
            entry = yield from allocator.allocate(core_id)
            got.append(entry)
        results.append(got)

    for core in range(n_threads):
        engine.spawn(worker(engine, core))
    engine.run()
    return [e for chunk in results for e in chunk]


def test_freelist_allocates_unique_entries():
    eng = Engine()
    part = SwapPartition("p", 64)
    alloc = FreeListAllocator(eng, part)
    entries = run_allocations(eng, alloc, 10, n_threads=3)
    assert len(entries) == 30
    assert len({e.entry_id for e in entries}) == 30
    assert alloc.stats.allocations == 30


def test_freelist_contention_inflates_alloc_time():
    part_solo = SwapPartition("solo", 4096)
    eng_solo = Engine()
    alloc_solo = FreeListAllocator(eng_solo, part_solo)
    run_allocations(eng_solo, alloc_solo, 50, n_threads=1)

    part_contended = SwapPartition("cont", 4096)
    eng_cont = Engine()
    alloc_cont = FreeListAllocator(eng_cont, part_contended)
    run_allocations(eng_cont, alloc_cont, 50, n_threads=16)

    assert alloc_cont.stats.mean_alloc_time_us > 2 * alloc_solo.stats.mean_alloc_time_us


def test_freelist_scan_cost_grows_with_occupancy():
    eng = Engine()
    part = SwapPartition("p", 100)
    alloc = FreeListAllocator(eng, part)
    entries = run_allocations(eng, alloc, 95)
    # Re-measure one allocation near-full vs the first near-empty.
    assert alloc.stats.max_alloc_time_us > alloc.base_scan_us * 2


def test_freelist_free_returns_entry():
    eng = Engine()
    part = SwapPartition("p", 4)
    alloc = FreeListAllocator(eng, part)
    entries = run_allocations(eng, alloc, 4)
    assert part.free_count == 0
    alloc.free(entries[0])
    assert part.free_count == 1
    assert alloc.stats.frees == 1


def test_cluster_allocator_unique_entries():
    eng = Engine()
    part = SwapPartition("p", 1024)
    alloc = PerCoreClusterAllocator(
        eng, part, cluster_entries=64, rng=np.random.default_rng(1)
    )
    entries = run_allocations(eng, alloc, 20, n_threads=8)
    assert len({e.entry_id for e in entries}) == 160


def test_cluster_allocator_free_and_reuse():
    eng = Engine()
    part = SwapPartition("p", 128)
    alloc = PerCoreClusterAllocator(
        eng, part, cluster_entries=64, rng=np.random.default_rng(1)
    )
    entries = run_allocations(eng, alloc, 4)
    alloc.free(entries[0])
    assert alloc.occupancy == pytest.approx(3 / 128)


def test_cluster_allocator_exhaustion():
    eng = Engine()
    part = SwapPartition("p", 8)
    alloc = PerCoreClusterAllocator(
        eng, part, cluster_entries=4, rng=np.random.default_rng(1)
    )
    with pytest.raises(RuntimeError):
        run_allocations(eng, alloc, 9)


def test_cluster_collision_degree_grows_with_cores():
    # More cores than clusters forces collisions.
    eng = Engine()
    part = SwapPartition("p", 4096)
    alloc = PerCoreClusterAllocator(
        eng, part, cluster_entries=1024, rng=np.random.default_rng(1)
    )  # only 4 clusters
    run_allocations(eng, alloc, 5, n_threads=16)
    assert alloc.collision_degree() > 1.0


def test_batch_allocator_amortizes_lock():
    eng = Engine()
    part = SwapPartition("p", 1024)
    alloc = BatchAllocator(eng, part, batch_size=16)
    run_allocations(eng, alloc, 64)
    assert alloc.stats.lock_acquisitions == 4  # 64 / 16
    assert alloc.stats.allocations == 64


def test_batch_allocator_unique_entries_across_cores():
    eng = Engine()
    part = SwapPartition("p", 1024)
    alloc = BatchAllocator(eng, part, batch_size=8)
    entries = run_allocations(eng, alloc, 16, n_threads=4)
    assert len({e.entry_id for e in entries}) == 64


def test_linux514_combines_cluster_and_batch():
    eng = Engine()
    part = SwapPartition("p", 2048)
    alloc = Linux514Allocator(
        eng, part, cluster_entries=256, batch_size=8, rng=np.random.default_rng(2)
    )
    entries = run_allocations(eng, alloc, 32, n_threads=4)
    assert len({e.entry_id for e in entries}) == 128
    # Locking happens once per batch at most.
    assert alloc.stats.lock_acquisitions <= 128 / 8 + 4


def test_rate_per_second():
    eng = Engine()
    part = SwapPartition("p", 512)
    alloc = FreeListAllocator(eng, part)
    run_allocations(eng, alloc, 100)
    assert alloc.stats.rate_per_second() > 0


def test_mean_alloc_time_zero_when_unused():
    eng = Engine()
    part = SwapPartition("p", 8)
    alloc = FreeListAllocator(eng, part)
    assert alloc.stats.mean_alloc_time_us == 0.0
    assert alloc.stats.rate_per_second() == 0.0
