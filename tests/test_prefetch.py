"""Unit tests for the prefetcher family."""

import pytest

from repro.prefetch import (
    KernelReadahead,
    LeapPrefetcher,
    PageGroupGraph,
    Prefetcher,
    ReferenceGraphPrefetcher,
    ThreadPatternPrefetcher,
    majority_vote,
)


# -- majority vote -----------------------------------------------------------


def test_majority_vote_clear_majority():
    assert majority_vote([1, 1, 2, 1, 1]) == 1


def test_majority_vote_no_majority():
    assert majority_vote([1, 2, 3, 4]) is None


def test_majority_vote_exact_half_is_not_majority():
    assert majority_vote([1, 1, 2, 2]) is None


def test_majority_vote_empty():
    assert majority_vote([]) is None


def test_majority_vote_negative_strides():
    assert majority_vote([-2, -2, 5, -2]) == -2


# -- null prefetcher -----------------------------------------------------------


def test_null_prefetcher_proposes_nothing():
    pf = Prefetcher()
    assert pf.on_fault("a", 0, 100, 0.0) == []
    assert pf.stats.faults_observed == 1


# -- kernel readahead ----------------------------------------------------------


def test_readahead_initial_readaround_window():
    pf = KernelReadahead()
    vpns = pf.on_fault("a", 0, 100, 0.0)  # first miss absorbs (MISS_DECAY)
    assert vpns == [101, 102, 103, 104]


def test_readahead_hits_grow_window_to_cap():
    pf = KernelReadahead(max_window=8)
    pf.on_fault("a", 0, 100, 0.0)
    out = pf.on_fault("a", 0, 101, 1.0, prefetched_hit=True)
    assert len(out) == 8  # score back at the cap
    out = pf.on_fault("a", 0, 102, 2.0, prefetched_hit=True)
    assert len(out) == 8  # capped at page_cluster-style maximum


def test_readahead_follows_confirmed_stride():
    pf = KernelReadahead()
    pf.on_fault("a", 0, 100, 0.0, prefetched_hit=True)
    pf.on_fault("a", 0, 104, 1.0, prefetched_hit=True)  # delta 4, unconfirmed
    vpns = pf.on_fault("a", 0, 108, 2.0, prefetched_hit=True)  # confirmed
    assert vpns[0] == 112
    assert vpns[1] - vpns[0] == 4


def test_readahead_unconfirmed_stride_reads_around():
    pf = KernelReadahead()
    pf.on_fault("a", 0, 100, 0.0)
    vpns = pf.on_fault("a", 0, 104, 1.0, prefetched_hit=True)
    assert vpns[0] == 105  # contiguous readaround until confirmation
    assert vpns[1] - vpns[0] == 1


RANDOM_VPNS = [10, 250, 30, 400, 170, 330, 60, 490, 220, 140, 470, 90]


def test_readahead_misses_shrink_to_silence():
    """§2: with no pattern the window shrinks until prefetching stops.

    The score drops one step per MISS_DECAY(=2) misses:
    4, 4, 2, 2, 1, 1, silent... (apart from sparse probes).
    """
    pf = KernelReadahead()
    proposals = [
        len(pf.on_fault("a", 0, vpn, float(i)))
        for i, vpn in enumerate(RANDOM_VPNS)
    ]
    assert proposals[:6] == [4, 2, 2, 1, 1, 0]
    assert set(proposals[6:]) <= {0, 1}  # silence, modulo probes
    assert proposals[-1] == 0 or proposals.count(0) >= 4


def test_readahead_probes_while_silent():
    pf = KernelReadahead()
    proposals = []
    for i in range(40):
        vpn = RANDOM_VPNS[i % len(RANDOM_VPNS)] + 500 * (i % 7)
        proposals.append(len(pf.on_fault("a", 0, vpn % 512, float(i))))
    silent_region = proposals[6:]
    assert 0 in silent_region
    assert 1 in silent_region  # sparse probes keep hope alive


def test_readahead_recovers_after_hits_resume():
    pf = KernelReadahead()
    for i, vpn in enumerate(RANDOM_VPNS):
        pf.on_fault("a", 0, vpn, float(i))  # driven silent
    assert pf.window_of("a", 10) == 0
    pf.on_fault("a", 0, 100, 20.0, prefetched_hit=True)
    pf.on_fault("a", 0, 101, 21.0, prefetched_hit=True)
    assert pf.window_of("a", 100) >= 1


def test_readahead_buckets_are_per_app():
    pf = KernelReadahead()
    # Drive app b silent; app a's window must be unaffected.
    for i, vpn in enumerate(RANDOM_VPNS):
        pf.on_fault("b", 0, vpn, float(i))
    assert pf.window_of("b", 10) == 0
    assert pf.window_of("a", 10) > 0


def test_readahead_window_of_matches_proposals():
    pf = KernelReadahead()
    pf.on_fault("a", 0, 100, 0.0)
    window = pf.window_of("a", 100)
    vpns = pf.on_fault("a", 0, 101, 1.0, prefetched_hit=True)
    assert len(vpns) == min(8, 2 * window)


# -- Leap -----------------------------------------------------------------------


def test_leap_follows_majority_stride():
    pf = LeapPrefetcher()
    for i in range(8):
        vpns = pf.on_fault("a", 0, 100 + 2 * i, float(i))
    assert vpns
    assert vpns[0] == 100 + 14 + 2


def test_leap_aggressive_fallback_prefetches_contiguous():
    pf = LeapPrefetcher(aggressive=True)
    vpns = []
    for i, vpn in enumerate([10, 900, 44, 12345, 77, 31000]):
        vpns = pf.on_fault("a", 0, vpn, float(i))
    assert vpns  # still prefetches despite no pattern
    assert vpns[0] == 31001  # contiguous readaround


def test_leap_conservative_mode_stays_silent():
    pf = LeapPrefetcher(aggressive=False)
    out = []
    for i, vpn in enumerate([10, 900, 44, 12345, 77, 31000]):
        out = pf.on_fault("a", 0, vpn, float(i))
    assert out == []


def test_leap_shared_history_cross_app_interference():
    """Interleaving a second app's faults destroys the first app's trend.

    App a walks stride 2; the aggressive fallback prefetches stride 1, so
    only a genuine majority vote can produce a vpn+2 first proposal.
    """
    shared = LeapPrefetcher(per_app_history=False)
    solo = LeapPrefetcher(per_app_history=False)
    follow = {"shared": 0, "solo": 0}
    for i in range(32):
        vpns = solo.on_fault("a", 0, 100 + 2 * i, float(i))
        if vpns and vpns[0] == 100 + 2 * i + 2:
            follow["solo"] += 1
        vpns = shared.on_fault("a", 0, 100 + 2 * i, float(i))
        if vpns and vpns[0] == 100 + 2 * i + 2:
            follow["shared"] += 1
        # App b interleaves pointer-chasing faults into the shared window.
        shared.on_fault("b", 0, (i * 7919) % 100000 + 1_000_000, float(i) + 0.5)
    assert follow["solo"] > follow["shared"]


def test_leap_per_app_history_restores_isolation():
    isolated = LeapPrefetcher(per_app_history=True)
    follow = 0
    for i in range(32):
        vpns = isolated.on_fault("a", 0, 100 + 2 * i, float(i))
        if vpns and vpns[0] == 100 + 2 * i + 2:
            follow += 1
        isolated.on_fault("b", 0, (i * 7919) % 100000 + 1_000_000, float(i) + 0.5)
    assert follow > 20


# -- per-thread patterns ----------------------------------------------------------


def test_thread_pattern_separates_threads():
    pf = ThreadPatternPrefetcher()
    # Thread 0 walks stride 1, thread 1 walks stride 3, interleaved.
    last0, last1 = [], []
    for i in range(10):
        last0 = pf.on_fault("a", 0, 100 + i, float(i))
        last1 = pf.on_fault("a", 1, 5000 + 3 * i, float(i))
    assert last0 and last0[0] == 100 + 9 + 1
    assert last1 and last1[1] - last1[0] == 3


def test_thread_pattern_no_trend_no_proposal():
    pf = ThreadPatternPrefetcher()
    out = []
    for i, vpn in enumerate([10, 900, 44, 12345, 77]):
        out = pf.on_fault("a", 0, vpn, float(i))
    assert out == []


def test_thread_pattern_trend_query():
    pf = ThreadPatternPrefetcher()
    for i in range(6):
        pf.observe("a", 7, 100 + 2 * i)
    assert pf.trend("a", 7) == 2
    assert pf.trend("a", 8) is None


# -- reference graph -----------------------------------------------------------


def test_graph_group_of():
    graph = PageGroupGraph(group_pages=16)
    assert graph.group_of(0) == 0
    assert graph.group_of(15) == 0
    assert graph.group_of(16) == 1


def test_graph_intra_group_edge_ignored():
    graph = PageGroupGraph(group_pages=16)
    graph.record_reference(0, 5)
    assert graph.edge_count == 0


def test_graph_edge_and_reachability():
    graph = PageGroupGraph(group_pages=4)
    graph.record_reference(0, 4)   # group 0 -> 1
    graph.record_reference(4, 8)   # group 1 -> 2
    graph.record_reference(8, 12)  # group 2 -> 3
    graph.record_reference(12, 0)  # group 3 -> 0 (cycle back)
    reached = graph.reachable_groups(0, max_hops=3)
    assert reached == [1, 2, 3]  # cycle not refollowed, 3 hops deep


def test_graph_hop_limit():
    graph = PageGroupGraph(group_pages=4)
    for g in range(5):
        graph.record_reference(g * 4, (g + 1) * 4)
    assert graph.reachable_groups(0, max_hops=2) == [1, 2]


def test_reference_prefetcher_proposes_group_pages():
    graph = PageGroupGraph(group_pages=4)
    graph.record_reference(0, 8)  # group 0 -> group 2
    pf = ReferenceGraphPrefetcher(graph, max_hops=3)
    vpns = pf.on_fault("a", 0, 1, 0.0)
    assert vpns == [8, 9, 10, 11]


def test_reference_prefetcher_caps_pages():
    graph = PageGroupGraph(group_pages=8)
    for g in range(1, 10):
        graph.record_reference(0, g * 8)
    pf = ReferenceGraphPrefetcher(graph, max_pages=10)
    vpns = pf.on_fault("a", 0, 0, 0.0)
    assert len(vpns) == 10


def test_reference_prefetcher_isolated_page_proposes_nothing():
    graph = PageGroupGraph()
    pf = ReferenceGraphPrefetcher(graph)
    assert pf.on_fault("a", 0, 12345, 0.0) == []


def test_graph_invalid_group_size():
    with pytest.raises(ValueError):
        PageGroupGraph(0)


# -- readahead VMA clamping ---------------------------------------------------


def test_readahead_negative_stride_never_proposes_negative_vpns():
    ra = KernelReadahead()
    # Establish a confirmed descending stride ending near address zero.
    ra.on_fault("app", 0, 6, 0.0)
    ra.on_fault("app", 0, 4, 1.0)
    proposals = ra.on_fault("app", 0, 2, 2.0)
    assert proposals  # the stride is confirmed and the window is open
    assert all(vpn >= 0 for vpn in proposals)
    assert ra.stats.proposals_clamped > 0


def test_readahead_clamps_to_registered_vma():
    ra = KernelReadahead()
    ra.note_region("app", 100, 110)
    ra.on_fault("app", 0, 103, 0.0)
    ra.on_fault("app", 0, 105, 1.0)
    proposals = ra.on_fault("app", 0, 107, 2.0)  # stride +2 confirmed
    assert proposals == [109]  # 111, 113... fall past the VMA end
    assert ra.stats.proposals_clamped > 0


def test_readahead_clamp_uses_containing_region():
    ra = KernelReadahead()
    ra.note_region("app", 0, 50)
    ra.note_region("app", 1000, 1100)
    before = ra.stats.proposals_clamped
    proposals = ra.on_fault("app", 0, 1050, 0.0)
    assert proposals
    assert all(1000 <= vpn < 1100 for vpn in proposals)
    assert ra.stats.proposals_clamped == before  # window fits the VMA


def test_readahead_probe_is_clamped_at_vma_end():
    ra = KernelReadahead()
    ra.note_region("app", 0, 10)
    state = ra._bucket_for("app", 9)
    state.score = -1  # force silence so the next Nth fault probes
    state.silent_faults = ra.PROBE_INTERVAL - 1
    proposals = ra.on_fault("app", 0, 9, 0.0)
    assert proposals == []  # probe vpn 10 is past the mapping
    assert ra.stats.proposals_clamped == 1


def test_prefetcher_stats_include_clamp_counter():
    base = Prefetcher()
    assert base.stats.proposals_clamped == 0
    base.note_region("app", 0, 100)  # no-op on the base policy
