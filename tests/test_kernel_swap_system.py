"""Integration tests for the Linux-baseline swap system."""

from repro.harness.driver import spawn_app
from repro.harness.machine import Machine
from repro.kernel import AppContext, CgroupConfig, LinuxSwapSystem, SwapSystemConfig
from repro.prefetch import KernelReadahead
from tests.conftest import build_system, sequential_accesses


def test_fault_on_swapped_page_fetches_it():
    machine = Machine(seed=1)
    system, app, vma = build_system(machine)
    cold_vpn = vma.end_vpn - 1
    page = app.space.page(cold_vpn)
    assert not page.resident

    def proc():
        yield from system.handle_fault(app, 0, cold_vpn, False)

    machine.engine.spawn(proc())
    machine.engine.run(until=10_000)
    assert page.resident
    assert app.stats.demand_swapins == 1
    assert app.stats.faults == 1
    assert machine.nic.stats.reads_completed >= 1


def test_fault_frees_entry_only_without_entry_keeping():
    machine = Machine(seed=1)
    system, app, vma = build_system(machine)
    system.config.entry_keeping = False
    cold_vpn = vma.end_vpn - 1
    page = app.space.page(cold_vpn)
    entry = page.swap_entry

    def proc():
        yield from system.handle_fault(app, 0, cold_vpn, False)

    machine.engine.spawn(proc())
    machine.engine.run(until=10_000)
    assert page.swap_entry is None
    assert not entry.allocated  # returned to the free list


def test_entry_keeping_retains_entry_on_clean_page():
    machine = Machine(seed=1)
    system, app, vma = build_system(machine)
    assert system.config.entry_keeping
    cold_vpn = vma.end_vpn - 1
    page = app.space.page(cold_vpn)

    def proc():
        yield from system.handle_fault(app, 0, cold_vpn, False)

    machine.engine.spawn(proc())
    machine.engine.run(until=10_000)
    assert page.resident
    assert page.swap_entry is not None
    assert page.swap_entry.allocated


def test_sequential_scan_completes_and_swaps():
    machine = Machine(seed=2)
    system, app, vma = build_system(machine, prefetcher=KernelReadahead())
    n_accesses = 4000
    spawn_app(system, app, [sequential_accesses(vma, n_accesses, write=True)])
    machine.engine.run(until=50_000_000)
    assert app.finished_at_us is not None, "workload did not finish"
    assert app.stats.accesses == n_accesses
    assert app.stats.faults > 0
    assert app.stats.swapouts > 0
    # Sequential scans are what readahead is built for.
    assert app.stats.prefetches_issued > 0
    assert app.stats.cache_hits > 0


def test_prefetching_reduces_demand_swapins():
    def run(prefetcher):
        machine = Machine(seed=3)
        system, app, vma = build_system(machine, prefetcher=prefetcher)
        spawn_app(system, app, [sequential_accesses(vma, 3000)])
        machine.engine.run(until=50_000_000)
        assert app.finished_at_us is not None
        return app

    without = run(None)
    with_ra = run(KernelReadahead())
    assert with_ra.stats.demand_swapins < without.stats.demand_swapins * 0.6
    assert with_ra.completion_time_us < without.completion_time_us


def test_frame_pool_never_exceeds_capacity():
    machine = Machine(seed=4)
    system, app, vma = build_system(machine, local_pages=128, total_pages=512)
    spawn_app(system, app, [sequential_accesses(vma, 2000, write=True)])
    machine.engine.run(until=50_000_000)
    assert app.finished_at_us is not None
    assert app.pool.stats.peak_used <= app.pool.capacity_pages


def test_all_pages_accounted_after_run():
    """Invariant: every page is resident, cached, or remote with an entry."""
    machine = Machine(seed=5)
    system, app, vma = build_system(machine)
    spawn_app(system, app, [sequential_accesses(vma, 2000, write=True)])
    machine.engine.run(until=50_000_000)
    assert app.finished_at_us is not None
    for page in app.space.pages.values():
        if page.resident:
            continue
        assert page.swap_entry is not None
        assert page.swap_entry.allocated


def test_concurrent_threads_on_same_pages():
    machine = Machine(seed=6)
    system, app, vma = build_system(machine, n_cores=8)
    streams = [sequential_accesses(vma, 1500) for _ in range(8)]
    spawn_app(system, app, streams)
    machine.engine.run(until=100_000_000)
    assert app.finished_at_us is not None
    assert app.stats.accesses == 8 * 1500


def test_multi_app_sharing_interferes():
    """Co-running apps each run slower than one app alone."""

    def strided_stream(vma, start, n, write, cpu_us=0.05):
        for i in range(n):
            yield (vma.start_vpn + ((start + i) % vma.n_pages), write, cpu_us)

    def run(n_apps):
        machine = Machine(seed=7)
        config = SwapSystemConfig(shared_cache_pages=64)
        system = LinuxSwapSystem(
            machine.engine,
            machine.nic,
            partition_pages=65536,
            telemetry=machine.telemetry,
            config=config,
        )
        apps = []
        for i in range(n_apps):
            app = AppContext(
                machine.engine,
                CgroupConfig(name=f"app{i}", n_cores=8, local_memory_pages=200),
            )
            vma = app.space.map_region(1024, name="heap")
            system.register_app(app)
            system.prepopulate(app, resident_fraction=0.15)
            streams = [
                strided_stream(vma, t * 128, 1200, write=True) for t in range(8)
            ]
            spawn_app(system, app, streams)
            apps.append(app)
        machine.engine.run(until=400_000_000)
        for app in apps:
            assert app.finished_at_us is not None
        return apps[0].completion_time_us

    solo = run(1)
    corun = run(3)
    assert corun > solo * 1.2


def test_swapout_throughput_recorded():
    machine = Machine(seed=8)
    system, app, vma = build_system(machine)
    spawn_app(system, app, [sequential_accesses(vma, 3000, write=True)])
    machine.engine.run(until=50_000_000)
    meter = machine.telemetry.swapout_rate("app")
    assert meter.total == app.stats.swapouts + app.stats.clean_drops
    assert meter.total > 0


def test_read_bandwidth_recorded_per_app():
    machine = Machine(seed=9)
    system, app, vma = build_system(machine)
    spawn_app(system, app, [sequential_accesses(vma, 2000)])
    machine.engine.run(until=50_000_000)
    assert machine.telemetry.read_bandwidth.totals.get("app", 0) > 0


def test_fault_stall_time_accumulates():
    machine = Machine(seed=10)
    system, app, vma = build_system(machine)
    spawn_app(system, app, [sequential_accesses(vma, 1000)])
    machine.engine.run(until=50_000_000)
    assert app.stats.fault_stall_us > 0
    assert app.stats.alloc_stall_us >= 0
