"""Tests for the dynamic swap-cache rebalancing extension."""

import pytest

from repro.core.canvas import CanvasConfig, CanvasSwapSystem
from repro.core.rebalance import CacheRebalancer
from repro.harness.machine import Machine
from repro.kernel import AppContext, CgroupConfig
from repro.mem import Page
from repro.sim import Engine
from repro.swap import SwapCache, SwapPartition


def make_caches(engine, budgets):
    return {
        name: SwapCache(name, pages) for name, pages in budgets.items()
    }


def fill(cache, part, n, prefetched=False):
    for _ in range(n):
        entry = part.pop_free()
        cache.insert(entry, Page(entry.entry_id), prefetched=prefetched)


def test_budget_conserved_across_rounds():
    engine = Engine()
    caches = make_caches(engine, {"a": 256, "b": 256})
    rebalancer = CacheRebalancer(engine, caches, floor_pages=64)
    part = SwapPartition("p", 1024)
    fill(caches["a"], part, 250)  # pressured
    caches["a"].stats.shrink_evictions = 50
    total_before = rebalancer.total_budget
    for _ in range(5):
        rebalancer.rebalance_once()
    assert rebalancer.total_budget == total_before


def test_surplus_flows_to_pressured_cache():
    engine = Engine()
    caches = make_caches(engine, {"idle": 256, "busy": 128})
    rebalancer = CacheRebalancer(engine, caches, floor_pages=64)
    part = SwapPartition("p", 1024)
    fill(caches["busy"], part, 128)  # at the lid
    caches["busy"].stats.shrink_evictions = 100
    moved = rebalancer.rebalance_once()
    assert moved > 0
    assert caches["busy"].capacity_pages > 128
    assert caches["idle"].capacity_pages < 256
    assert caches["idle"].capacity_pages >= rebalancer.floor_pages


def test_no_movement_without_pressure():
    engine = Engine()
    caches = make_caches(engine, {"a": 256, "b": 256})
    rebalancer = CacheRebalancer(engine, caches)
    assert rebalancer.rebalance_once() == 0
    assert rebalancer.stats.pages_moved == 0


def test_floor_respected():
    engine = Engine()
    caches = make_caches(engine, {"donor": 80, "busy": 128})
    rebalancer = CacheRebalancer(engine, caches, floor_pages=64)
    part = SwapPartition("p", 1024)
    fill(caches["busy"], part, 128)
    caches["busy"].stats.shrink_evictions = 10
    for _ in range(20):
        rebalancer.rebalance_once()
    assert caches["donor"].capacity_pages >= 64


def test_daemon_runs_periodically():
    engine = Engine()
    caches = make_caches(engine, {"a": 256, "b": 128})
    rebalancer = CacheRebalancer(engine, caches, period_us=1_000.0)
    part = SwapPartition("p", 1024)
    fill(caches["b"], part, 128)
    caches["b"].stats.shrink_evictions = 5
    engine.run(until=10_500.0)
    assert rebalancer.stats.rounds == 10
    assert caches["b"].capacity_pages > 128


def test_canvas_wires_rebalancer_when_enabled():
    machine = Machine(seed=0)
    system = CanvasSwapSystem(
        machine.engine,
        machine.nic,
        canvas_config=CanvasConfig(dynamic_cache_rebalance=True),
    )
    app = AppContext(
        machine.engine,
        CgroupConfig(
            name="a", n_cores=2, local_memory_pages=256,
            swap_partition_pages=1024, swap_cache_pages=128,
        ),
    )
    app.space.map_region(512)
    system.register_app(app)
    assert system.rebalancer is not None
    assert "a" in system._rebalance_caches
    assert system.rebalancer.total_budget == 128


def test_canvas_default_has_no_rebalancer():
    machine = Machine(seed=0)
    system = CanvasSwapSystem(machine.engine, machine.nic)
    assert system.rebalancer is None
