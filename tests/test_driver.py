"""Unit tests for the application thread driver."""

import pytest

from repro.harness.driver import app_thread, run_to_completion, spawn_app
from repro.harness.machine import Machine
from repro.kernel import AppContext, CgroupConfig, LinuxSwapSystem, SwapSystemConfig
from repro.sim import SimulationError


def build(machine, local=128, total=256, cores=2):
    system = LinuxSwapSystem(
        machine.engine,
        machine.nic,
        partition_pages=2048,
        telemetry=machine.telemetry,
        config=SwapSystemConfig(shared_cache_pages=128),
    )
    app = AppContext(
        machine.engine,
        CgroupConfig(name="a", n_cores=cores, local_memory_pages=local),
    )
    app.space.map_region(total, name="heap")
    system.register_app(app)
    system.prepopulate(app, resident_fraction=local / total * 0.8)
    return system, app


def build_fully_resident(machine):
    """Local memory twice the working set: no reclaim, no faults."""
    system = LinuxSwapSystem(
        machine.engine,
        machine.nic,
        partition_pages=2048,
        telemetry=machine.telemetry,
        config=SwapSystemConfig(shared_cache_pages=128),
    )
    app = AppContext(
        machine.engine,
        CgroupConfig(name="a", n_cores=2, local_memory_pages=512),
    )
    app.space.map_region(256, name="heap")
    system.register_app(app)
    system.prepopulate(app, resident_fraction=1.0)
    return system, app


def test_all_resident_run_is_pure_cpu():
    machine = Machine(seed=0)
    system, app = build_fully_resident(machine)
    vpns = sorted(app.space.pages)
    accesses = [(vpns[i % len(vpns)], False, 1.0) for i in range(100)]
    proc = spawn_app(system, app, [iter(accesses)])
    run_to_completion(machine.engine, [proc])
    assert app.stats.faults == 0
    assert app.stats.accesses == 100
    # 100 accesses x 1µs CPU on one thread.
    assert app.completion_time_us == pytest.approx(100.0, rel=0.05)


def test_cpu_flush_batches_reduce_event_count():
    machine = Machine(seed=0)
    system, app = build_fully_resident(machine)
    vpns = sorted(app.space.pages)
    accesses = [(vpns[i % len(vpns)], False, 0.5) for i in range(200)]
    proc = spawn_app(system, app, [iter(accesses)], cpu_flush_us=50.0)
    run_to_completion(machine.engine, [proc])
    # Total CPU time still fully charged despite batching.
    assert app.cores.stats.busy_us == pytest.approx(100.0, rel=0.05)


def test_write_accesses_dirty_pages():
    machine = Machine(seed=0)
    system, app = build(machine)
    vpn = sorted(app.space.pages)[0]
    proc = spawn_app(system, app, [iter([(vpn, True, 0.1)])])
    run_to_completion(machine.engine, [proc])
    assert app.space.page(vpn).dirty


def test_started_and_finished_timestamps():
    machine = Machine(seed=0)
    system, app = build(machine)
    vpns = sorted(app.space.pages)
    proc = spawn_app(system, app, [iter([(v, False, 0.5) for v in vpns[:50]])])
    run_to_completion(machine.engine, [proc])
    assert app.finished_at_us is not None
    assert app.finished_at_us >= app.started_at_us
    assert app.completion_time_us > 0


def test_multiple_threads_complete_together():
    machine = Machine(seed=0)
    system, app = build(machine, cores=4)
    vpns = sorted(app.space.pages)
    streams = [iter([(v, False, 0.2) for v in vpns[:40]]) for _ in range(4)]
    proc = spawn_app(system, app, streams)
    run_to_completion(machine.engine, [proc])
    assert app.stats.accesses == 160


def test_run_to_completion_respects_limit():
    machine = Machine(seed=0)

    def forever(eng):
        while True:
            yield eng.timeout(1000.0)

    proc = machine.engine.spawn(forever(machine.engine))
    with pytest.raises(SimulationError):
        run_to_completion(machine.engine, [proc], limit_us=10_000.0)
