"""Property suite for the rack's cluster-placement layer (PR 9).

Four layers:

* **Config validation** — :class:`~repro.cluster.ClusterConfig` rejects
  nonsense sizing and pads the per-server scale tuples.
* **Placement properties** — every entry homes on exactly one live
  server; placement is a pure function of ``(config, adoption order)``;
  the three policies distribute chunks as specified; the per-server
  ``entries_homed`` charge reconciles with a ground-up recount.
* **Retirement properties** — killing or draining a server leaves no
  non-retired entry behind, the allocator free-path guard retires
  condemned entries instead of pooling them, and the per-core policy's
  purge never condemns an in-use entry (the zombie-deque hazard).
* **Interleaving property** — a seeded random schedule of arrive
  (adopt), grow, fail, and drain events keeps the charge ledger
  reconciled at every step.
"""

import random

import pytest

from repro.cluster import PLACEMENTS, ClusterConfig, Rack
from repro.rdma import RNIC
from repro.sim import Engine
from repro.swap import SwapPartition
from repro.swap.allocator import FreeListAllocator, PerCoreClusterAllocator


class _BareSystem:
    """Stand-in system: adopted partitions with no app bindings.

    The death/drain sweeps scan ``apps`` for page bindings; with none,
    every entry on the condemned server is unreferenced and retires in
    one pass — exactly what these structural properties need.
    """

    def __init__(self):
        self.apps = {}
        self._inflight_req = {}


def _rack(config, n_entries=0, name="p", allocator_cls=None):
    """A bare rack; optionally with one adopted partition of n_entries."""
    eng = Engine()
    nic = RNIC(eng)
    rack = Rack(eng, nic, config, seed=0)
    system = _BareSystem()
    partition = allocator = None
    if n_entries:
        partition = SwapPartition(name, n_entries)
        if allocator_cls is not None:
            allocator = allocator_cls(eng, partition)
        rack.adopt(system, partition, allocator)
    return eng, rack, system, partition, allocator


def _server_ids(partition):
    return [entry.server_id for entry in partition.entries]


def _reconciles(rack):
    """Per-server charges match a ground-up recount of live entries."""
    counts = rack.homed_counts()
    return all(
        counts[server.server_id] == server.entries_homed
        for server in rack.servers
    )


# -- ClusterConfig validation ---------------------------------------------


def test_config_rejects_bad_sizing():
    with pytest.raises(ValueError):
        ClusterConfig(n_servers=0)
    with pytest.raises(ValueError):
        ClusterConfig(placement="scatter")
    with pytest.raises(ValueError):
        ClusterConfig(chunk_entries=0)


def test_scale_tuples_pad_with_ones():
    config = ClusterConfig(
        n_servers=4,
        server_bandwidth_scale=(0.5,),
        server_registration_scale=(2.0, 3.0),
    )
    assert config.bandwidth_scale_of(0) == 0.5
    assert config.bandwidth_scale_of(3) == 1.0
    assert config.registration_scale_of(1) == 3.0
    assert config.registration_scale_of(2) == 1.0


# -- Placement properties -------------------------------------------------


def test_every_entry_homes_on_exactly_one_live_server():
    _, rack, _, partition, _ = _rack(
        ClusterConfig(n_servers=4, chunk_entries=8), n_entries=64
    )
    for entry in partition.entries:
        assert 0 <= entry.server_id < 4
        assert rack.servers[entry.server_id].alive
        assert not entry.retired
    assert _reconciles(rack)
    assert sum(s.entries_homed for s in rack.servers) == 64


@pytest.mark.parametrize("placement", sorted(PLACEMENTS))
def test_placement_is_a_pure_function_of_config_and_order(placement):
    config = ClusterConfig(n_servers=4, placement=placement, chunk_entries=8)
    maps = []
    for _ in range(2):
        _, rack, system, _, _ = _rack(config)
        parts = [SwapPartition(f"p{i}", 48) for i in range(3)]
        for part in parts:
            rack.adopt(system, part)
        maps.append([_server_ids(p) for p in parts])
    assert maps[0] == maps[1]


def test_stripe_round_robins_chunks():
    _, _, _, partition, _ = _rack(
        ClusterConfig(n_servers=4, placement="stripe", chunk_entries=4),
        n_entries=16,
    )
    assert _server_ids(partition) == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4


def test_locality_pins_each_partition_to_one_server():
    _, rack, system, _, _ = _rack(
        ClusterConfig(n_servers=4, placement="locality", chunk_entries=4)
    )
    parts = [SwapPartition(f"p{i}", 16) for i in range(3)]
    for part in parts:
        rack.adopt(system, part)
    homes = [set(_server_ids(p)) for p in parts]
    assert all(len(h) == 1 for h in homes)  # fate sharing is contained
    assert len(set.union(*homes)) == 3  # the cursor spreads partitions


def test_capacity_pressure_picks_the_least_loaded_server():
    config = ClusterConfig(
        n_servers=3, placement="capacity-pressure", chunk_entries=4
    )
    _, rack, system, _, _ = _rack(config)
    rack.adopt(system, SwapPartition("big", 8))  # 4 on s0, 4 on s1
    rack.adopt(system, SwapPartition("small", 4))  # least-loaded: s2
    assert rack.servers[2].entries_homed == 4
    # A tie (all at 4) breaks on the lowest server id.
    rack.adopt(system, SwapPartition("tie", 4))
    assert rack.servers[0].entries_homed == 8


def test_capacity_cap_diverts_chunks_to_servers_with_room():
    config = ClusterConfig(
        n_servers=2,
        placement="stripe",
        chunk_entries=4,
        server_capacity_entries=8,
    )
    _, rack, _, partition, _ = _rack(config, n_entries=16)
    # The cap keeps both servers at their limit instead of striping past
    # a full one; with every server full, placement falls back rather
    # than failing, so a third partition still homes somewhere live.
    assert [s.entries_homed for s in rack.servers] == [8, 8]
    assert _reconciles(rack)


def test_growth_places_new_chunks():
    _, rack, _, partition, _ = _rack(
        ClusterConfig(n_servers=2, chunk_entries=4), n_entries=8
    )
    new = partition.grow(8)
    assert all(0 <= e.server_id < 2 for e in new)
    assert _reconciles(rack)
    assert sum(s.entries_homed for s in rack.servers) == 16


def test_registration_scale_tracks_the_next_chunks_home():
    config = ClusterConfig(
        n_servers=2,
        placement="stripe",
        chunk_entries=4,
        server_registration_scale=(1.0, 3.0),
    )
    _, rack, _, partition, _ = _rack(config, n_entries=4)  # cursor now at s1
    assert rack.registration_scale_for(partition) == 3.0
    partition.grow(4)  # lands on s1, cursor back to s0
    assert rack.registration_scale_for(partition) == 1.0


def test_eligibility_tiers_and_total_loss():
    _, rack, system, _, _ = _rack(ClusterConfig(n_servers=3))
    rack.servers[0].draining = True
    assert [s.server_id for s in rack._eligible()] == [1, 2]
    rack.servers[1].draining = True
    rack.servers[2].alive = False
    # Healthy tier empty, alive tier is the draining survivor.
    assert [s.server_id for s in rack._eligible()] == [0, 1]
    rack.servers[0].alive = False
    rack.servers[1].alive = False
    with pytest.raises(RuntimeError):
        rack._eligible()


# -- Retirement properties ------------------------------------------------


def test_kill_retires_every_entry_on_the_dead_server():
    eng, rack, _, partition, _ = _rack(
        ClusterConfig(n_servers=4, chunk_entries=8), n_entries=64
    )
    rack.kill_server(0)
    eng.run(until=1_000)
    assert not rack.servers[0].alive
    assert all(
        entry.retired for entry in partition.entries if entry.server_id == 0
    )
    assert rack.servers[0].entries_homed == 0
    assert _reconciles(rack)
    # No bindings existed, so nothing was lost or migrated.
    assert rack.stats.pages_lost_from_dead == 0
    assert rack.ledger_balanced()
    # Killing a dead server is a no-op.
    rack.kill_server(0)
    assert rack.stats.servers_failed == 1


def test_drain_retires_unbound_entries_and_completes():
    eng, rack, _, partition, _ = _rack(
        ClusterConfig(n_servers=2, chunk_entries=8), n_entries=32
    )
    rack.drain_server(1)
    eng.run(until=10_000)
    assert rack.servers[1].draining
    assert rack.stats.servers_drained == 1
    assert all(
        entry.retired for entry in partition.entries if entry.server_id == 1
    )
    assert _reconciles(rack)
    assert rack.ledger_balanced()


def test_drain_refuses_without_a_destination():
    eng, rack, _, _, _ = _rack(ClusterConfig(n_servers=1), n_entries=8)
    rack.drain_server(0)
    assert not rack.servers[0].draining  # nowhere to migrate to
    _, rack2, _, _, _ = _rack(ClusterConfig(n_servers=2), n_entries=8)
    rack2.servers[1].alive = False
    rack2.drain_server(0)
    assert not rack2.servers[0].draining


def test_total_rack_loss_retires_without_rehoming():
    eng, rack, _, partition, _ = _rack(
        ClusterConfig(n_servers=2, chunk_entries=8), n_entries=16
    )
    rack.kill_server(0)
    rack.kill_server(1)
    eng.run(until=10_000)
    assert all(entry.retired for entry in partition.entries)
    assert rack.stats.pages_rehomed == 0
    assert _reconciles(rack)


def test_free_path_retires_condemned_entries():
    eng, rack, _, partition, allocator = _rack(
        ClusterConfig(n_servers=2, chunk_entries=8),
        n_entries=16,
        allocator_cls=FreeListAllocator,
    )
    held = [allocator.take_free_untimed() for _ in range(10)]
    doomed = next(e for e in held if e.server_id == 0)
    safe = next(e for e in held if e.server_id == 1)
    # Kill without running the engine: the synchronous pool purge fires,
    # the (binding-scanning) death sweep does not — isolating the guard.
    rack.kill_server(0)
    # In-use entries on the dead server were NOT retired by the purge —
    # only the free pool was; the free path finishes the job.
    assert not doomed.retired
    free_before = partition.free_count
    allocator.free(doomed)
    assert doomed.retired
    assert partition.free_count == free_before  # never re-pooled
    allocator.free(safe)
    assert not safe.retired
    assert partition.free_count == free_before + 1
    assert allocator.stats.frees == 2
    assert _reconciles(rack)


def test_per_core_purge_spares_in_use_entries():
    eng, rack, _, partition, allocator = _rack(
        ClusterConfig(n_servers=2, chunk_entries=8),
        n_entries=16,
        allocator_cls=PerCoreClusterAllocator,
    )
    held = [allocator.take_free_untimed() for _ in range(10)]
    in_use_on_0 = [e for e in held if e.server_id == 0]
    assert in_use_on_0  # the schedule must actually exercise the hazard
    rack.kill_server(0)
    # The policy's base deque still lists in-use entries; the purge must
    # only touch cluster free lists, so held entries stay live until the
    # owner frees them (and the free guard retires them then).
    assert all(not e.retired for e in in_use_on_0)
    for entry in held:
        allocator.free(entry)
    assert all(e.retired for e in in_use_on_0)
    for cluster in allocator.clusters:
        assert all(not e.retired for e in cluster.free)
    assert _reconciles(rack)


# -- Interleaving property ------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_charge_ledger_reconciles_under_random_interleavings(seed):
    """Arbitrary arrive/grow/fail/drain schedules keep charges exact."""
    rng = random.Random(seed)
    config = ClusterConfig(
        n_servers=4,
        placement=rng.choice(PLACEMENTS),
        chunk_entries=rng.choice([4, 8, 16]),
    )
    eng, rack, system, _, _ = _rack(config)
    partitions = []
    for step in range(24):
        op = rng.random()
        if op < 0.5 or not partitions:
            part = SwapPartition(f"p{len(partitions)}", rng.choice([8, 16, 32]))
            rack.adopt(system, part)
            partitions.append(part)
        elif op < 0.75:
            rng.choice(partitions).grow(rng.choice([4, 8]))
        else:
            candidates = [
                s for s in rack.servers if s.alive and not s.draining
            ]
            if len(candidates) > 1:
                victim = rng.choice(candidates)
                if rng.random() < 0.5:
                    rack.kill_server(victim.server_id)
                else:
                    rack.drain_server(victim.server_id)
        eng.run(until=eng.now + 1_000)
        assert _reconciles(rack)
        counts = rack.homed_counts()
        live = sum(
            1
            for part in partitions
            for entry in part.entries
            if not entry.retired
        )
        assert sum(counts.values()) == live
    # End state: nothing lives on a dead or draining server, and every
    # live entry still names a real server.
    eng.run(until=eng.now + 10_000)
    for part in partitions:
        for entry in part.entries:
            if entry.retired:
                continue
            server = rack.servers[entry.server_id]
            assert server.alive and not server.draining
    assert rack.ledger_balanced()
