"""Unit tests for the RNIC, channels, and physical QPs."""

import pytest

from repro.rdma import RNIC, DirectionalChannel, RdmaOp, RdmaRequest, RequestKind
from repro.sim import Engine
from repro.swap import SwapPartition


def make_request(eng, part, op=RdmaOp.READ, kind=RequestKind.DEMAND, app="a"):
    entry = part.pop_free()
    return RdmaRequest(op, kind, app, entry, completion=eng.event())


def test_channel_serializes_transfers():
    chan = DirectionalChannel("c", bandwidth_bytes_per_us=1000.0)
    t1 = chan.reserve(0.0, 4000)
    t2 = chan.reserve(0.0, 4000)
    assert t1 == pytest.approx(4.0)
    assert t2 == pytest.approx(8.0)
    assert chan.bytes_transferred == 8000


def test_channel_idle_gap_not_charged():
    chan = DirectionalChannel("c", bandwidth_bytes_per_us=1000.0)
    chan.reserve(0.0, 1000)
    release = chan.reserve(100.0, 1000)
    assert release == pytest.approx(101.0)


def test_channel_invalid_bandwidth():
    with pytest.raises(ValueError):
        DirectionalChannel("c", 0)


def test_single_read_latency():
    eng = Engine()
    nic = RNIC(eng, base_latency_us=3.0, verb_overhead_us=1.0)
    qp = nic.create_qp("q", RdmaOp.READ)
    part = SwapPartition("p", 8)
    req = make_request(eng, part)
    nic.submit(qp, req)
    eng.run_until_fired(req.completion)
    # verb 1.0 + wire 4096/4800 + latency 3.0
    assert req.latency_us == pytest.approx(1.0 + 4096 / 4800.0 + 3.0)
    assert nic.stats.reads_completed == 1
    assert nic.stats.read_bytes == 4096


def test_reads_and_writes_use_separate_channels():
    eng = Engine()
    nic = RNIC(eng)
    read_qp = nic.create_qp("r", RdmaOp.READ)
    write_qp = nic.create_qp("w", RdmaOp.WRITE)
    part = SwapPartition("p", 8)
    read = make_request(eng, part, op=RdmaOp.READ)
    write = make_request(eng, part, op=RdmaOp.WRITE, kind=RequestKind.SWAPOUT)
    nic.submit(read_qp, read)
    nic.submit(write_qp, write)
    eng.run()
    # Both finish at single-request latency: no cross-direction blocking.
    assert read.latency_us == pytest.approx(write.latency_us)


def test_queueing_delay_accumulates():
    eng = Engine()
    nic = RNIC(eng)
    qp = nic.create_qp("q", RdmaOp.READ)
    part = SwapPartition("p", 32)
    requests = [make_request(eng, part) for _ in range(10)]
    for req in requests:
        nic.submit(qp, req)
    eng.run()
    latencies = [req.latency_us for req in requests]
    assert latencies == sorted(latencies)
    assert latencies[-1] > latencies[0] * 3


def test_priority_qp_served_first():
    eng = Engine()
    nic = RNIC(eng)
    urgent = nic.create_qp("sync", RdmaOp.READ, priority=0)
    lazy = nic.create_qp("async", RdmaOp.READ, priority=1)
    part = SwapPartition("p", 64)
    prefetches = [
        make_request(eng, part, kind=RequestKind.PREFETCH) for _ in range(8)
    ]
    demand = make_request(eng, part, kind=RequestKind.DEMAND)
    # Fill the async QP first, then submit the demand read.
    for req in prefetches:
        nic.submit(lazy, req)

    def late_submit(eng):
        yield eng.timeout(0.5)
        nic.submit(urgent, demand)

    eng.spawn(late_submit(eng))
    eng.run()
    completed_before = sum(
        1 for req in prefetches if req.completed_at_us < demand.completed_at_us
    )
    # The demand read overtakes most of the queued prefetches.
    assert completed_before <= 2


def test_round_robin_within_priority_level():
    eng = Engine()
    nic = RNIC(eng)
    qp_a = nic.create_qp("a", RdmaOp.READ, priority=0)
    qp_b = nic.create_qp("b", RdmaOp.READ, priority=0)
    part = SwapPartition("p", 64)
    reqs_a = [make_request(eng, part, app="a") for _ in range(4)]
    reqs_b = [make_request(eng, part, app="b") for _ in range(4)]
    for req in reqs_a:
        nic.submit(qp_a, req)
    for req in reqs_b:
        nic.submit(qp_b, req)
    eng.run()
    order = sorted(reqs_a + reqs_b, key=lambda r: r.issued_at_us)
    apps = [r.app_name for r in order]
    # Strict alternation between the two equal-priority QPs.
    assert apps[:4] in (["a", "b", "a", "b"], ["b", "a", "b", "a"])


def test_dropped_request_skipped():
    eng = Engine()
    nic = RNIC(eng)
    qp = nic.create_qp("q", RdmaOp.READ)
    part = SwapPartition("p", 8)
    req = make_request(eng, part)
    req.dropped = True
    nic.submit(qp, req)
    eng.run()
    assert req.completed_at_us is None
    assert nic.stats.dropped_skipped == 1


def test_completion_hook_called():
    eng = Engine()
    nic = RNIC(eng)
    seen = []
    nic.completion_hooks.append(lambda r: seen.append(r.request_id))
    qp = nic.create_qp("q", RdmaOp.READ)
    part = SwapPartition("p", 8)
    req = make_request(eng, part)
    nic.submit(qp, req)
    eng.run()
    assert seen == [req.request_id]


def test_latency_none_while_incomplete():
    eng = Engine()
    part = SwapPartition("p", 8)
    req = make_request(eng, part)
    assert req.latency_us is None


def test_bandwidth_saturation_bounds_throughput():
    eng = Engine()
    nic = RNIC(eng, read_bandwidth_bytes_per_us=4800.0, verb_overhead_us=0.0)
    qp = nic.create_qp("q", RdmaOp.READ)
    part = SwapPartition("p", 2048)
    n = 1000
    for _ in range(n):
        nic.submit(qp, make_request(eng, part))
    eng.run()
    elapsed_us = eng.now
    achieved = n * 4096 / elapsed_us
    assert achieved <= 4800.0 * 1.01
    assert achieved > 4800.0 * 0.9
