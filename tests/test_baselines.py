"""Tests for the Fastswap and Infiniswap comparator systems."""

from repro.baselines import FastswapSystem, InfiniswapSystem
from repro.harness.driver import run_to_completion, spawn_app
from repro.harness.machine import Machine
from repro.kernel import AppContext, CgroupConfig, SwapSystemConfig
from repro.rdma.message import RequestKind


def build(machine, system_cls, **kwargs):
    system = system_cls(
        machine.engine,
        machine.nic,
        partition_pages=8192,
        telemetry=machine.telemetry,
        config=SwapSystemConfig(shared_cache_pages=256),
        **kwargs,
    )
    app = AppContext(
        machine.engine,
        CgroupConfig(name="a", n_cores=4, local_memory_pages=256),
    )
    app.space.map_region(1024, name="heap")
    system.register_app(app)
    system.prepopulate(app, 0.2)
    return system, app


def seq_stream(app, n, write=True):
    vpns = sorted(app.space.pages)
    for i in range(n):
        yield (vpns[i % len(vpns)], write, 0.05)


def test_fastswap_splits_demand_and_prefetch_qps():
    machine = Machine(seed=0)
    system, app = build(machine, FastswapSystem)
    assert system.sync_qp.priority < system.async_qp.priority
    from repro.rdma.message import RdmaOp, RdmaRequest

    part = system.partition
    demand = RdmaRequest(
        RdmaOp.READ, RequestKind.DEMAND, "a", part.pop_free(),
        completion=machine.engine.event(),
    )
    prefetch = RdmaRequest(
        RdmaOp.READ, RequestKind.PREFETCH, "a", part.pop_free(),
        completion=machine.engine.event(),
    )
    system._submit_read(app, demand)
    system._submit_read(app, prefetch)
    assert system.sync_qp.enqueued_total == 1
    assert system.async_qp.enqueued_total == 1


def test_fastswap_runs_workload():
    machine = Machine(seed=1)
    system, app = build(machine, FastswapSystem)
    proc = spawn_app(system, app, [seq_stream(app, 2000)])
    run_to_completion(machine.engine, [proc])
    assert app.finished_at_us is not None
    assert app.stats.faults > 0


def test_fastswap_uses_larger_kswapd_batch():
    machine = Machine(seed=2)
    system, app = build(machine, FastswapSystem)
    assert system.config.kswapd_batch >= 32


def test_infiniswap_adds_block_layer_latency():
    solo_latencies = {}
    for cls in (FastswapSystem, InfiniswapSystem):
        machine = Machine(seed=3)
        system, app = build(machine, cls)
        proc = spawn_app(system, app, [seq_stream(app, 800, write=False)])
        run_to_completion(machine.engine, [proc])
        hist = machine.telemetry.latency_hist("a", RequestKind.DEMAND)
        solo_latencies[cls.__name__] = hist.percentile(50)
    assert (
        solo_latencies["InfiniswapSystem"]
        > solo_latencies["FastswapSystem"] + 2.0
    )


def test_infiniswap_disables_entry_keeping():
    machine = Machine(seed=4)
    system, app = build(machine, InfiniswapSystem)
    assert not system.config.entry_keeping


def test_infiniswap_unsupported_workloads():
    machine = Machine(seed=5)
    system, app = build(machine, InfiniswapSystem)
    assert not system.supports("xgboost")
    assert not system.supports("spark_lr")
    assert system.supports("memcached")
    assert system.supports("snappy")


def test_infiniswap_completes_workload():
    machine = Machine(seed=6)
    system, app = build(machine, InfiniswapSystem)
    proc = spawn_app(system, app, [seq_stream(app, 1500)])
    run_to_completion(machine.engine, [proc])
    assert app.finished_at_us is not None
