"""Unit tests for pages and address spaces."""

import pytest

from repro.mem import PAGE_SIZE, AddressSpace, Page, PageState


def test_page_defaults():
    page = Page(0x10, owner_name="app")
    assert page.resident
    assert not page.dirty
    assert page.mapcount == 1
    assert not page.shared
    assert page.state is PageState.NEW
    assert page.swap_entry is None
    assert page.reserved_entry is None
    assert not page.has_reservation


def test_page_touch_sets_bits():
    page = Page(1)
    page.touch(5.0)
    assert page.referenced
    assert not page.dirty
    page.touch(6.0, write=True)
    assert page.dirty
    assert page.last_access_us == 6.0


def test_page_ids_unique():
    assert Page(0).page_id != Page(0).page_id


def test_shared_page_detection():
    page = Page(0)
    page.mapcount = 2
    assert page.shared


def test_page_size_constant():
    assert PAGE_SIZE == 4096


def test_map_region_materializes_pages():
    space = AddressSpace("app")
    vma = space.map_region(10, name="heap")
    assert vma.n_pages == 10
    assert space.total_pages == 10
    for vpn in vma.vpns():
        assert space.page(vpn).vpn == vpn


def test_regions_do_not_overlap():
    space = AddressSpace("app")
    a = space.map_region(100, name="a")
    b = space.map_region(100, name="b")
    assert a.end_vpn <= b.start_vpn
    assert set(a.vpns()).isdisjoint(b.vpns())


def test_unmapped_vpn_raises():
    space = AddressSpace("app")
    space.map_region(4)
    with pytest.raises(KeyError):
        space.page(0)


def test_find_vma():
    space = AddressSpace("app")
    vma = space.map_region(8, name="x")
    assert space.find_vma(vma.start_vpn) is vma
    assert space.find_vma(vma.end_vpn - 1) is vma
    assert space.find_vma(vma.end_vpn) is None


def test_shared_mapping_bumps_mapcount():
    owner = AddressSpace("a")
    other = AddressSpace("b")
    vma = owner.map_region(4, name="lib")
    other.map_shared_from(owner, vma)
    for vpn in vma.vpns():
        page = owner.page(vpn)
        assert page.mapcount == 2
        assert page.shared
        assert other.page(vpn) is page
    assert vma.shared


def test_resident_pages_counts():
    space = AddressSpace("app")
    vma = space.map_region(5)
    assert space.resident_pages == 5
    space.page(vma.start_vpn).resident = False
    assert space.resident_pages == 4


def test_vma_rejects_empty():
    space = AddressSpace("app")
    with pytest.raises(ValueError):
        space.map_region(0)
