"""Seeded A/B property suite: ``allocate_many`` vs the serial oracle.

``EntryAllocator.allocate_many(n, core_id)`` is one generator entry for
a whole batch of allocations.  Its contract — on every policy — is that
it is a *pure call-count optimization*: the same entries come back in
the same order, each entry's simulated scan/lock interval is identical
(captured by spying on ``AllocatorStats.record``), the aggregate
statistics match field-for-field, and the simulated clock ends at the
same instant.  These tests pin that contract by running twin engines,
one driving the serial ``allocate`` loop and one driving
``allocate_many``, with identical contender processes hammering the
same locks on both sides.
"""

import dataclasses
import random

import numpy as np
import pytest

from repro.sim import Engine
from repro.swap import (
    BatchAllocator,
    FreeListAllocator,
    Linux514Allocator,
    PerCoreClusterAllocator,
    SwapPartition,
)

POLICIES = {
    "freelist": lambda eng, part: FreeListAllocator(eng, part),
    "cluster": lambda eng, part: PerCoreClusterAllocator(
        eng, part, cluster_entries=64, rng=np.random.default_rng(7)
    ),
    "batch": lambda eng, part: BatchAllocator(eng, part, batch_size=8),
    "linux514": lambda eng, part: Linux514Allocator(
        eng, part, cluster_entries=64, batch_size=8, rng=np.random.default_rng(7)
    ),
}


def _spy_records(alloc):
    """Capture every (start_us, end_us) passed to stats.record."""
    records = []
    original = alloc.stats.record

    def spy(start_us, end_us):
        records.append((start_us, end_us))
        original(start_us, end_us)

    alloc.stats.record = spy
    return records


def _contender(engine, alloc, core_id, n, taken):
    """A concurrent allocator user contending on the same locks."""
    yield engine.sleep(0.3 * core_id)
    for _ in range(n):
        entry = yield from alloc.allocate(core_id)
        taken.append(entry.entry_id)
        yield engine.sleep(1.1)


def _run_side(policy, mode, n, contenders=3, contender_allocs=4, partition_pages=1024):
    """One engine run; returns (entry_ids, per-alloc records, stats, end_now)."""
    engine = Engine()
    part = SwapPartition("p", partition_pages)
    alloc = POLICIES[policy](engine, part)
    records = _spy_records(alloc)
    got = []
    contender_ids = []

    def main():
        if mode == "serial":
            for _ in range(n):
                entry = yield from alloc.allocate(core_id=0)
                got.append(entry.entry_id)
        else:
            entries = yield from alloc.allocate_many(n, core_id=0)
            got.extend(e.entry_id for e in entries)

    engine.spawn(main())
    for core in range(1, contenders + 1):
        engine.spawn(
            _contender(engine, alloc, core, contender_allocs, contender_ids)
        )
    engine.run()
    return got, records, dataclasses.asdict(alloc.stats), engine.now, contender_ids


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_allocate_many_matches_serial_oracle(policy):
    """Same entries, same order, same per-allocation intervals, same
    aggregate stats, same final clock — under lock contention."""
    n = 24
    serial = _run_side(policy, "serial", n)
    batched = _run_side(policy, "many", n)
    # (a) identical entry sequences for the batch caller...
    assert batched[0] == serial[0]
    # ...and for the bystanders (the batch perturbed nobody).
    assert batched[4] == serial[4]
    # (b) every allocation's simulated (start, end) interval is identical.
    assert batched[1] == serial[1]
    # (c) aggregate statistics agree field-for-field.
    assert batched[2] == serial[2]
    # (d) the runs end at the same simulated instant.
    assert batched[3] == serial[3]


@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_allocate_many_parity_on_random_shapes(policy, seed):
    """Property sweep: random batch sizes and contention levels."""
    rng = random.Random(seed * 101 + hash(policy) % 1000)
    n = rng.randint(1, 40)
    contenders = rng.randint(0, 5)
    contender_allocs = rng.randint(1, 6)
    serial = _run_side(policy, "serial", n, contenders, contender_allocs)
    batched = _run_side(policy, "many", n, contenders, contender_allocs)
    assert batched == serial


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_allocate_many_zero_is_a_noop(policy):
    engine = Engine()
    part = SwapPartition("p", 64)
    alloc = POLICIES[policy](engine, part)

    out = []

    def main():
        entries = yield from alloc.allocate_many(0)
        out.append(entries)

    engine.spawn(main())
    engine.run()
    assert out == [[]]
    assert alloc.stats.allocations == 0
    assert engine.now == 0.0


def test_allocate_many_exhaustion_raises_mid_batch_like_serial():
    """Partition exhaustion surfaces at the same member index."""

    def run(mode):
        engine = Engine()
        part = SwapPartition("p", 4)
        alloc = FreeListAllocator(engine, part)
        got = []
        err = []

        def main():
            try:
                if mode == "serial":
                    for _ in range(6):
                        entry = yield from alloc.allocate(0)
                        got.append(entry.entry_id)
                else:
                    entries = yield from alloc.allocate_many(6, 0)
                    got.extend(e.entry_id for e in entries)
            except RuntimeError as exc:
                err.append(str(exc))

        engine.spawn(main())
        engine.run()
        return got, err, alloc.stats.allocations

    serial_got, serial_err, serial_allocs = run("serial")
    many_got, many_err, many_allocs = run("many")
    assert serial_err and many_err == serial_err
    assert serial_allocs == many_allocs == 4
    # The serial loop observed the first four entries; the batch raises
    # before returning, so its caller sees none — but the allocator's own
    # ledger (above) proves the same four members succeeded first.
    assert len(serial_got) == 4 and many_got == []
