"""Unit tests for metric collectors and report formatting."""

import pytest

from repro.metrics import (
    BandwidthMeter,
    Histogram,
    RateMeter,
    format_series,
    format_table,
    weighted_min_max_ratio,
)


# -- Histogram ----------------------------------------------------------------


def test_histogram_mean_min_max():
    hist = Histogram()
    hist.extend([1.0, 2.0, 3.0, 4.0])
    assert hist.mean == pytest.approx(2.5)
    assert hist.min_value == 1.0
    assert hist.max_value == 4.0
    assert hist.count == 4


def test_histogram_percentiles():
    hist = Histogram()
    hist.extend(float(i) for i in range(1, 101))
    assert hist.percentile(50) == pytest.approx(50.5)
    assert hist.percentile(99) == pytest.approx(99.01)
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 100.0


def test_histogram_empty():
    hist = Histogram()
    assert hist.mean == 0.0
    assert hist.percentile(50) == 0.0
    assert hist.cdf() == []
    assert hist.fraction_above(10) == 0.0


def test_histogram_fraction_above():
    hist = Histogram()
    hist.extend([1.0, 2.0, 3.0, 4.0])
    assert hist.fraction_above(2.0) == pytest.approx(0.5)
    assert hist.fraction_above(0.0) == 1.0
    assert hist.fraction_above(4.0) == 0.0


def test_histogram_cdf_points():
    hist = Histogram()
    hist.extend([1.0, 2.0, 3.0, 4.0])
    cdf = hist.cdf(points=[2.5])
    assert cdf == [(2.5, 0.5)]


def test_histogram_stddev():
    hist = Histogram()
    hist.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert hist.stddev == pytest.approx(2.138, rel=1e-3)


def test_histogram_insertion_after_percentile_query():
    hist = Histogram()
    hist.extend([1.0, 2.0])
    assert hist.percentile(100) == 2.0
    hist.record(10.0)
    assert hist.percentile(100) == 10.0  # sorted cache invalidated


def test_histogram_add_many_matches_serial_records():
    serial = Histogram()
    batched = Histogram()
    values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6]
    for value in values:
        serial.record(value)
    batched.add_many(values)
    assert batched.count == serial.count
    assert batched.total == serial.total  # same left-to-right fold
    assert batched.min_value == serial.min_value
    assert batched.max_value == serial.max_value
    assert batched.percentile(50) == serial.percentile(50)


def test_histogram_add_many_invalidates_percentile_memo():
    """Regression: the bulk ingestion path must drop the memoized
    percentile answers, not just the sorted view."""
    hist = Histogram()
    hist.add_many([1.0, 2.0])
    assert hist.percentile(100) == 2.0  # primes _pcache
    hist.add_many([10.0])
    assert hist.percentile(100) == 10.0
    assert hist.percentile(0) == 1.0
    # And the overflow fallback invalidates too.
    capped = Histogram(max_samples=4)
    capped.add_many([1.0, 2.0, 3.0])
    assert capped.percentile(100) == 3.0
    capped.add_many([50.0, 60.0])  # would overflow: per-value fallback
    assert capped.count == 5
    assert capped.percentile(100) >= 3.0
    assert capped.max_value == 60.0


def test_histogram_add_many_empty_batch_is_noop():
    hist = Histogram()
    hist.add_many([])
    assert hist.count == 0
    assert hist.percentile(50) == 0.0


# -- RateMeter -----------------------------------------------------------------


def test_rate_meter_series():
    meter = RateMeter(bin_us=1000.0)
    meter.record(100.0)
    meter.record(200.0)
    meter.record(1500.0)
    series = meter.series()
    assert series == [(0.0, 2000.0), (1000.0, 1000.0)]


def test_rate_meter_mean_and_peak():
    meter = RateMeter(bin_us=1000.0)
    for t in (0.0, 1.0, 2.0, 1500.0):
        meter.record(t)
    assert meter.mean_rate_per_second(2000.0) == pytest.approx(2000.0)
    assert meter.peak_rate_per_second() == pytest.approx(3000.0)


def test_rate_meter_invalid_bin():
    with pytest.raises(ValueError):
        RateMeter(bin_us=0)


# -- BandwidthMeter --------------------------------------------------------------


def test_bandwidth_meter_mbps():
    meter = BandwidthMeter(bin_us=1000.0)
    meter.record("a", 0.0, 4096)
    meter.record("a", 500.0, 4096)
    meter.record("b", 0.0, 8192)
    # bytes/µs == MB/s
    assert meter.mean_mbps("a", 1000.0) == pytest.approx(8192 / 1000.0)
    assert meter.total_mean_mbps(1000.0) == pytest.approx(16384 / 1000.0)


def test_bandwidth_meter_peak_total():
    meter = BandwidthMeter(bin_us=1000.0)
    meter.record("a", 100.0, 1000)
    meter.record("b", 200.0, 1000)
    meter.record("a", 1500.0, 500)
    assert meter.peak_total_mbps() == pytest.approx(2.0)


def test_bandwidth_meter_streams():
    meter = BandwidthMeter()
    meter.record("b", 0.0, 1)
    meter.record("a", 0.0, 1)
    assert meter.streams() == ["a", "b"]


# -- WMMR -----------------------------------------------------------------------


def test_wmmr_perfect_fairness():
    assert weighted_min_max_ratio({"a": 10.0, "b": 10.0}, {"a": 1, "b": 1}) == 1.0


def test_wmmr_weighted():
    # b has twice the weight and twice the bandwidth: still fair.
    assert weighted_min_max_ratio({"a": 5.0, "b": 10.0}, {"a": 1, "b": 2}) == 1.0


def test_wmmr_unfair():
    assert weighted_min_max_ratio({"a": 1.0, "b": 10.0}, {"a": 1, "b": 1}) == pytest.approx(0.1)


def test_wmmr_empty_and_zero():
    assert weighted_min_max_ratio({}, {}) == 1.0
    assert weighted_min_max_ratio({"a": 0.0, "b": 0.0}, {"a": 1, "b": 1}) == 1.0


def test_wmmr_invalid_weight():
    with pytest.raises(ValueError):
        weighted_min_max_ratio({"a": 1.0}, {"a": 0.0})


# -- formatting ---------------------------------------------------------------------


def test_format_table_alignment():
    out = format_table(["name", "value"], [["spark", 1.5], ["x", 20000.0]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "20,000" in lines[3]


def test_format_series():
    out = format_series("title", {"a": [(0.0, 1.0), (5.0, 2.0)]}, unit="MB/s")
    assert "title" in out
    assert "a MB/s" in out


def test_bandwidth_total_until():
    meter = BandwidthMeter(bin_us=1000.0)
    meter.record("a", 500.0, 100)
    meter.record("a", 1500.0, 200)
    meter.record("a", 2500.0, 400)
    assert meter.total_until("a", 2000.0) == 300
    assert meter.total_until("a", 10_000.0) == 700
    assert meter.total_until("missing", 10_000.0) == 0


def test_format_cdf():
    from repro.metrics import format_cdf

    out = format_cdf(
        "latency",
        {"demand": {"p50": 5.0, "p99": 40.0}, "prefetch": {"p50": 100.0, "p99": 900.0}},
    )
    assert "latency" in out
    assert "demand" in out and "prefetch" in out


def test_format_cdf_empty():
    from repro.metrics import format_cdf

    out = format_cdf("t", {})
    assert out.startswith("t")


# -- Histogram reservoir + memoization -----------------------------------------


def test_histogram_empty_stddev():
    hist = Histogram()
    assert hist.stddev == 0.0
    hist.record(5.0)
    assert hist.stddev == 0.0  # one sample: undefined, reported as 0


def test_histogram_reservoir_is_unbiased_past_cap():
    # The old thinning overwrote a sliding window of slots with every
    # other late sample, skewing post-cap percentiles toward recent
    # values.  Algorithm R keeps a uniform sample: recording 0..9999
    # into a 200-slot reservoir must keep the median near 5000.
    hist = Histogram(name="latency", max_samples=200)
    for value in range(10_000):
        hist.record(float(value))
    assert hist.count == 10_000
    assert len(hist._samples) == 200
    assert 3500 <= hist.percentile(50) <= 6500
    assert hist.percentile(10) < 3500
    assert hist.percentile(90) > 6500
    # Exact aggregates are unaffected by thinning.
    assert hist.mean == pytest.approx(4999.5)
    assert hist.min_value == 0.0 and hist.max_value == 9999.0


def test_histogram_reservoir_is_deterministic():
    def build():
        hist = Histogram(name="same-name", max_samples=50)
        for value in range(1000):
            hist.record(float(value))
        return hist._samples

    assert build() == build()


def test_histogram_percentile_memo_invalidated_past_cap():
    hist = Histogram(name="memo", max_samples=4)
    hist.extend([1.0, 2.0, 3.0, 4.0])
    assert hist.percentile(100) == 4.0
    # Record past the cap until a replacement lands, then re-query.
    for _ in range(64):
        hist.record(100.0)
        if 100.0 in hist._samples:
            break
    assert 100.0 in hist._samples
    assert hist.percentile(100) == 100.0


# -- RateMeter bin boundaries --------------------------------------------------


def test_rate_meter_bin_boundaries():
    meter = RateMeter(bin_us=1000.0)
    meter.record(999.999)  # last instant of bin 0
    meter.record(1000.0)  # first instant of bin 1
    meter.record(1999.999)
    series = dict(meter.series())
    assert series[0.0] == pytest.approx(1000.0)  # 1 event/bin -> 1000/s
    assert series[1000.0] == pytest.approx(2000.0)
    assert 2000.0 not in series


# -- BandwidthMeter partial-bin accounting -------------------------------------


def test_bandwidth_total_until_pro_rates_final_bin():
    meter = BandwidthMeter(bin_us=1000.0)
    meter.record("a", 500.0, 100)
    meter.record("a", 1500.0, 200)
    meter.record("a", 2500.0, 400)
    # Halfway through bin 2: full bins 0+1 plus half of bin 2's bytes.
    assert meter.total_until("a", 2500.0) == pytest.approx(300 + 200)
    assert meter.total_until("a", 2250.0) == pytest.approx(300 + 100)
    # Bin-aligned cutoffs are unchanged (no partial coverage).
    assert meter.total_until("a", 2000.0) == pytest.approx(300)
    assert meter.total_until("a", 0.0) == 0.0


def test_bandwidth_total_until_mid_first_bin():
    meter = BandwidthMeter(bin_us=1000.0)
    meter.record("a", 0.0, 1000)
    assert meter.total_until("a", 250.0) == pytest.approx(250.0)


def test_histogram_mixed_add_paths_keep_algorithm_r_uniform():
    """Interleaving ``add_many`` with scalar ``record`` above the
    reservoir cap must preserve Algorithm R's inclusion probability
    ``max_samples / count`` for every value — early or late, bulk or
    scalar.  Each histogram name seeds an independent reservoir RNG, so
    many names act as many independent trials; tallying which insertion
    indexes survive across trials and binning by decile of insertion
    order exposes any skew (the old sliding-window thinning failed this
    by a factor of ~3 on the last decile)."""
    import numpy as np

    cap, total, trials = 64, 1024, 300
    deciles = np.zeros(10)
    for trial in range(trials):
        hist = Histogram(name=f"mix{trial}", max_samples=cap)
        index = 0
        # Mixed ingestion: scalar records and bulk batches of varying
        # size — some land below the cap, one straddles it, and the
        # rest arrive past it (the per-value fall-back path).
        while index < total:
            if index % 3 == 0:
                hist.record(float(index))
                index += 1
            else:
                n = min(7 + (index % 5), total - index)
                hist.add_many([float(index + j) for j in range(n)])
                index += n
        assert hist.count == total
        assert len(hist._samples) == cap
        kept = np.asarray(hist._samples, dtype=int)
        assert len(set(hist._samples)) == cap, "reservoir duplicated a slot"
        deciles += np.histogram(kept, bins=10, range=(0, total))[0]
    # Every decile of insertion order keeps ~trials * cap / 10 samples;
    # the tolerance is ~5 sigma for Bernoulli(1/16) inclusions.
    expected = trials * cap / 10.0
    assert np.all(np.abs(deciles - expected) < 0.12 * expected), deciles
