"""Unit tests for the adaptive swap-entry allocation manager (§5.1)."""

import pytest

from repro.core.adaptive_alloc import AdaptiveSwapManager
from repro.kernel import AppContext, CgroupConfig
from repro.mem import Page, PageState
from repro.sim import Engine
from repro.swap import SwapPartition


def make_manager(n_entries=128, high=0.75, **kwargs):
    engine = Engine()
    partition = SwapPartition("p", n_entries)
    app = AppContext(engine, CgroupConfig(name="a", n_cores=4, local_memory_pages=64))
    manager = AdaptiveSwapManager(
        engine, partition, app, reservation_high_occupancy=high, **kwargs
    )
    return engine, partition, app, manager


def obtain(engine, manager, page, core=0):
    result = []

    def proc():
        entry = yield from manager.obtain_entry(page, core)
        result.append(entry)

    engine.spawn(proc())
    engine.run(until=engine.now + 1_000_000)
    return result[0]


def test_first_swapout_allocates_and_reserves():
    engine, partition, app, manager = make_manager()
    page = Page(0x10)
    entry = obtain(engine, manager, page)
    assert page.reserved_entry is entry
    assert entry.reserved
    assert manager.stats.locked_allocations == 1
    assert manager.stats.reservations_granted == 1


def test_second_swapout_is_lock_free():
    engine, partition, app, manager = make_manager()
    page = Page(0x10)
    first = obtain(engine, manager, page)
    second = obtain(engine, manager, page)
    assert second is first  # same remote cell reused
    assert manager.stats.reserved_swapouts == 1
    assert manager.stats.locked_allocations == 1
    assert app.stats.reserved_swapouts == 1


def test_no_reservation_granted_near_exhaustion():
    engine, partition, app, manager = make_manager(n_entries=16, high=0.5)
    # Drain the partition down to the writeback-headroom guard.
    while partition.free_count > manager.reserve_guard + 1:
        partition.pop_free()
    page = Page(0x10)
    obtain(engine, manager, page)
    assert page.reserved_entry is None
    assert manager.stats.reservations_granted == 0


def test_reservation_still_granted_under_scanner_pressure():
    """The 75% trigger starts the hot-page scanner; it does not deny
    grants while free entries remain (a cycling page deserves one)."""
    engine, partition, app, manager = make_manager(n_entries=64, high=0.25)
    for _ in range(20):
        partition.pop_free()
    assert manager.under_pressure  # scanner active
    page = Page(0x10)
    obtain(engine, manager, page)
    assert page.reserved_entry is not None


def test_on_mapped_keeps_reserved_entry():
    engine, partition, app, manager = make_manager()
    page = Page(0x10)
    entry = obtain(engine, manager, page)
    page.swap_entry = entry
    manager.on_mapped(page)
    assert page.state is PageState.RESIDENT_RESERVED
    assert page.swap_entry is entry
    assert entry.allocated


def test_on_mapped_frees_unreserved_entry():
    engine, partition, app, manager = make_manager(n_entries=16, high=0.0)
    while partition.free_count > manager.reserve_guard + 1:
        partition.pop_free()  # near exhaustion: grants denied
    page = Page(0x10)
    entry = obtain(engine, manager, page)
    assert page.reserved_entry is None
    page.swap_entry = entry
    manager.on_mapped(page)
    assert page.swap_entry is None
    assert not entry.allocated
    assert page.state is PageState.HOT_NO_RESERVATION


def test_on_evicted_state_transitions():
    engine, partition, app, manager = make_manager()
    reserved_page = Page(1)
    obtain(engine, manager, reserved_page)
    manager.on_evicted(reserved_page)
    assert reserved_page.state is PageState.COLD_RESERVED

    bare_page = Page(2)
    manager.on_evicted(bare_page)
    assert bare_page.state is PageState.COLD_NO_RESERVATION


def test_reserve_prepopulated():
    engine, partition, app, manager = make_manager()
    page = Page(3)
    entry = partition.pop_free()
    page.swap_entry = entry
    manager.reserve_prepopulated(page)
    assert page.reserved_entry is entry
    assert page.state is PageState.COLD_RESERVED


def test_reserve_prepopulated_requires_entry():
    engine, partition, app, manager = make_manager()
    with pytest.raises(ValueError):
        manager.reserve_prepopulated(Page(4))


def test_hot_scan_removes_reservation_under_pressure():
    engine, partition, app, manager = make_manager(
        n_entries=64, high=0.10, hot_threshold=2
    )
    page = Page(5)
    entry = obtain(engine, manager, page)  # granted (occupancy still low)
    # Make the partition pressured and the page hot (resident + LRU head).
    for _ in range(30):
        partition.pop_free()
    assert manager.under_pressure
    page.resident = True
    page.swap_entry = entry
    app.lru.insert(page)
    app.lru.note_access(page)
    manager._scan_once()
    assert page.reserved_entry is entry  # one scan is not enough
    manager._scan_once()
    assert page.reserved_entry is None
    assert page.state is PageState.HOT_NO_RESERVATION
    assert not entry.allocated
    assert manager.stats.reservations_removed == 1


def test_hot_score_resets_when_page_leaves_head():
    engine, partition, app, manager = make_manager(
        n_entries=64, high=0.0, hot_threshold=5, scan_fraction=0.01
    )
    pages = [Page(i) for i in range(100)]
    for page in pages:
        page.resident = True
        app.lru.insert(page)
        app.lru.note_access(page)
    # The head scan covers max(8, 1) pages; make page 0 part of the head.
    app.lru.note_access(pages[0])
    manager._scan_once()
    assert pages[0].hot_score == 1
    # Ten other pages take over the head; page 0's streak resets.
    for page in pages[50:60]:
        app.lru.note_access(page)
    manager._scan_once()
    assert pages[0].hot_score == 0


def test_no_scanning_without_pressure():
    engine, partition, app, manager = make_manager(n_entries=1024, high=0.99)
    page = Page(6)
    obtain(engine, manager, page)
    page.resident = True
    page.swap_entry = page.reserved_entry
    app.lru.insert(page)
    app.lru.note_access(page)
    engine.run(until=50_000.0)  # several scan periods
    assert page.reserved_entry is not None
    assert manager.stats.scans == 0


def test_emergency_release_frees_resident_reservations():
    """Allocations never starve: when the partition approaches
    exhaustion, reservations held by resident pages are recycled."""
    engine, partition, app, manager = make_manager(n_entries=8, high=0.99)
    pages = [Page(i) for i in range(12)]  # more pages than entries
    for page in pages:
        entry = obtain(engine, manager, page)
        assert entry is not None
        page.resident = True
        page.swap_entry = page.reserved_entry
        app.lru.insert(page)
    assert manager.stats.reservations_removed >= 1
    assert partition.free_count >= 0


def test_emergency_release_only_touches_resident_pages():
    engine, partition, app, manager = make_manager(n_entries=4, high=0.99)
    cold = Page(0)
    obtain(engine, manager, cold)
    cold.resident = False  # cold page: its entry holds the only data copy
    for _ in range(3):
        partition.pop_free()
    assert partition.free_count == 0
    with pytest.raises(RuntimeError):
        obtain(engine, manager, Page(1))
    assert cold.reserved_entry is not None  # untouched


def test_lock_free_fraction():
    engine, partition, app, manager = make_manager()
    page = Page(0)
    obtain(engine, manager, page)
    obtain(engine, manager, page)
    obtain(engine, manager, page)
    assert manager.stats.lock_free_fraction == pytest.approx(2 / 3)
