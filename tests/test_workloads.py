"""Unit tests for workload generators and the registry."""

import numpy as np
import pytest

from repro.kernel import AppContext, CgroupConfig
from repro.mem import AddressSpace
from repro.sim import Engine
from repro.workloads import (
    MANAGED_WORKLOADS,
    NATIVE_WORKLOADS,
    WORKLOADS,
    ZipfSampler,
    make_workload,
)
from repro.workloads import patterns
from repro.workloads.apps import SnappyWorkload


# -- zipf sampler --------------------------------------------------------------


def test_zipf_sampler_range():
    sampler = ZipfSampler(100, 0.99, np.random.default_rng(0))
    draws = sampler.sample_many(1000)
    assert draws.min() >= 0
    assert draws.max() < 100


def test_zipf_sampler_skew():
    sampler = ZipfSampler(1000, 0.99, np.random.default_rng(0))
    draws = sampler.sample_many(10_000)
    top_decile = np.sum(draws < 100) / draws.size
    assert top_decile > 0.5  # heavy head


def test_zipf_theta_zero_is_uniformish():
    sampler = ZipfSampler(1000, 0.0, np.random.default_rng(0))
    draws = sampler.sample_many(10_000)
    top_decile = np.sum(draws < 100) / draws.size
    assert 0.05 < top_decile < 0.15


def test_zipf_invalid_params():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0, rng)
    with pytest.raises(ValueError):
        ZipfSampler(10, -1.0, rng)


def test_zipf_deterministic():
    a = ZipfSampler(100, 0.9, np.random.default_rng(7)).sample_many(50)
    b = ZipfSampler(100, 0.9, np.random.default_rng(7)).sample_many(50)
    assert list(a) == list(b)


# -- patterns -----------------------------------------------------------------


def make_vma(n_pages=64):
    return AddressSpace("t").map_region(n_pages)


def test_sequential_wraps():
    vma = make_vma(8)
    vpns = [a[0] for a in patterns.sequential(vma, 10)]
    assert vpns[:8] == list(vma.vpns())
    assert vpns[8] == vma.start_vpn


def test_strided_pattern():
    vma = make_vma(64)
    vpns = [a[0] for a in patterns.strided(vma, 4, stride=8)]
    assert [v - vma.start_vpn for v in vpns] == [0, 8, 16, 24]


def test_write_ratio_deterministic_without_rng():
    vma = make_vma(16)
    writes = [a[1] for a in patterns.sequential(vma, 10, write_ratio=0.5)]
    assert writes == [True, False] * 5


def test_write_ratio_one():
    vma = make_vma(16)
    assert all(a[1] for a in patterns.sequential(vma, 5, write_ratio=1.0))


def test_shuffled_chain_is_permutation():
    vma = make_vma(32)
    chain = patterns.shuffled_chain(vma, np.random.default_rng(0))
    assert sorted(chain) == list(vma.vpns())


def test_pointer_chase_follows_chain():
    chain = [5, 9, 2, 7]
    vpns = [a[0] for a in patterns.pointer_chase(chain, 6)]
    assert vpns == [5, 9, 2, 7, 5, 9]


def test_gc_bursts_carry_idle_cpu():
    chain = list(range(100))
    accesses = list(patterns.gc_bursts(chain, n_bursts=2, burst_len=3, idle_cpu_us=500.0))
    assert len(accesses) == 6
    assert accesses[0][2] == 500.0
    assert accesses[1][2] != 500.0
    assert accesses[3][2] == 500.0


def test_interleave_exhausts_all():
    vma = make_vma(16)
    a = patterns.sequential(vma, 5)
    b = patterns.sequential(vma, 3)
    merged = list(patterns.interleave([a, b], np.random.default_rng(0)))
    assert len(merged) == 8


def test_zipfian_stays_in_region():
    vma = make_vma(32)
    for vpn, _w, _c in patterns.zipfian(vma, 100, np.random.default_rng(0)):
        assert vma.contains(vpn)


# -- registry -----------------------------------------------------------------


def test_registry_has_fourteen_table2_programs():
    assert len(WORKLOADS) == 14
    assert len(MANAGED_WORKLOADS) == 11
    assert len(NATIVE_WORKLOADS) == 3


def test_registry_known_names():
    for name in ("spark_lr", "cassandra", "neo4j", "memcached", "xgboost", "snappy"):
        assert name in WORKLOADS


def test_make_workload_unknown():
    with pytest.raises(KeyError):
        make_workload("doom")


def test_scale_shrinks_working_set():
    full = make_workload("spark_lr", scale=1.0)
    half = make_workload("spark_lr", scale=0.5)
    assert half.working_set_pages < full.working_set_pages


def test_invalid_scale():
    with pytest.raises(ValueError):
        make_workload("spark_lr", scale=0)


# -- workload builds and streams ------------------------------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_builds_and_streams(name):
    workload = make_workload(name, scale=0.1)
    engine = Engine()
    app = AppContext(
        engine,
        CgroupConfig(name=name, n_cores=4, local_memory_pages=4096),
    )
    rng = np.random.default_rng(0)
    workload.build(app, rng)
    assert app.space.total_pages >= workload.working_set_pages * 0.9
    assert app.runtime is not None
    streams = workload.thread_streams(app, np.random.default_rng(1))
    assert len(streams) == workload.total_threads
    # Every generated access must be mappable and carry sane fields.
    for stream in streams:
        for i, (vpn, write, cpu) in enumerate(stream):
            assert vpn in app.space.pages, f"{name}: unmapped vpn {vpn:#x}"
            assert isinstance(write, (bool, np.bool_))
            assert cpu >= 0
            if i > 200:
                break


def test_managed_workloads_have_gc_threads():
    for name in MANAGED_WORKLOADS:
        workload = make_workload(name, scale=0.1)
        assert workload.managed
        assert workload.n_aux_threads > 0


def test_native_workloads_have_no_gc_threads():
    for name in NATIVE_WORKLOADS:
        workload = make_workload(name, scale=0.1)
        assert not workload.managed
        assert workload.n_aux_threads == 0


def test_spark_registers_large_array():
    workload = make_workload("spark_lr", scale=0.2)
    engine = Engine()
    app = AppContext(engine, CgroupConfig(name="s", n_cores=4, local_memory_pages=4096))
    workload.build(app, np.random.default_rng(0))
    assert app.runtime.in_large_array(workload.data_vma.start_vpn)


def test_graph_workload_records_reference_edges():
    workload = make_workload("graphx_cc", scale=0.2)
    engine = Engine()
    app = AppContext(engine, CgroupConfig(name="g", n_cores=4, local_memory_pages=4096))
    workload.build(app, np.random.default_rng(0))
    assert app.runtime.reference_graph.edge_count > 0


def test_snappy_single_thread():
    workload = SnappyWorkload(scale=0.2)
    assert workload.n_threads == 1
    assert workload.total_threads == 1


def test_thread_counts_preserve_paper_ordering():
    spark = make_workload("spark_lr")
    memcached = make_workload("memcached")
    xgboost = make_workload("xgboost")
    snappy = make_workload("snappy")
    assert spark.total_threads > xgboost.total_threads
    assert xgboost.total_threads > memcached.total_threads
    assert memcached.total_threads > snappy.total_threads
