"""Unit tests for frame-pool accounting and watermarks."""

import pytest

from repro.mem import FramePool


def test_charge_and_uncharge():
    pool = FramePool(10)
    assert pool.try_charge(3)
    assert pool.used == 3
    assert pool.free == 7
    pool.uncharge(2)
    assert pool.used == 1


def test_overcommit_rejected():
    pool = FramePool(4)
    assert pool.try_charge(4)
    assert not pool.try_charge(1)
    assert pool.used == 4
    assert pool.stats.failed_charges == 1


def test_uncharge_below_zero_raises():
    pool = FramePool(4)
    with pytest.raises(ValueError):
        pool.uncharge(1)


def test_watermarks():
    pool = FramePool(100, low_watermark_fraction=0.8, high_watermark_fraction=0.95)
    pool.try_charge(79)
    assert not pool.above_low_watermark
    pool.try_charge(1)
    assert pool.above_low_watermark
    assert not pool.above_high_watermark
    pool.try_charge(15)
    assert pool.above_high_watermark


def test_reclaim_target():
    pool = FramePool(100, low_watermark_fraction=0.8)
    pool.try_charge(90)
    assert pool.reclaim_target() == 10
    pool.uncharge(20)
    assert pool.reclaim_target() == 0


def test_peak_tracking():
    pool = FramePool(10)
    pool.try_charge(7)
    pool.uncharge(5)
    pool.try_charge(1)
    assert pool.stats.peak_used == 7


def test_invalid_construction():
    with pytest.raises(ValueError):
        FramePool(0)
    with pytest.raises(ValueError):
        FramePool(10, low_watermark_fraction=0.9, high_watermark_fraction=0.5)


def test_negative_amounts_rejected():
    pool = FramePool(10)
    with pytest.raises(ValueError):
        pool.try_charge(-1)
    with pytest.raises(ValueError):
        pool.uncharge(-1)
