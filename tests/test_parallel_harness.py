"""Tests for the parallel fan-out, result snapshots, and the disk cache.

The contract under test: neither pickling, nor the process pool, nor the
persistent cache may change a single simulated number.  A result that
crossed a process boundary or a disk round-trip must read back exactly
like the live one.
"""

import pickle

import pytest

from repro.harness import (
    CACHE_STATS,
    ExperimentConfig,
    ExperimentJob,
    cached_run,
    default_disk_cache,
    default_worker_count,
    job_key,
    result_digest,
    run_experiment,
    run_experiments_parallel,
)

GROUP = ["snappy", "memcached"]


def tiny(system="linux", **kwargs):
    return ExperimentConfig(system=system, scale=0.05, **kwargs)


def assert_same_result(a, b):
    """Every number a benchmark reads back must match exactly."""
    assert set(a.apps) == set(b.apps)
    for name in a.apps:
        assert a.completion_time(name) == b.completion_time(name)
        sa, sb = a.apps[name].stats, b.apps[name].stats
        assert sa.faults == sb.faults
        assert sa.swapouts == sb.swapouts
        assert sa.clean_drops == sb.clean_drops
        assert sa.fault_stall_us == sb.fault_stall_us
        assert sa.prefetches_issued == sb.prefetches_issued
    assert a.elapsed_us == b.elapsed_us


# -- determinism: serial vs parallel ------------------------------------


def test_parallel_matches_serial_results():
    jobs = [
        (GROUP, tiny("linux")),
        (GROUP, tiny("fastswap")),
        (GROUP, tiny("canvas")),
    ]
    serial = [run_experiment(list(w), c) for w, c in jobs]
    parallel = run_experiments_parallel(jobs, max_workers=2)
    assert len(parallel) == len(serial)
    for live, shipped in zip(serial, parallel):
        assert_same_result(live, shipped)


def test_parallel_preserves_job_order():
    jobs = [(["snappy"], tiny()), (["memcached"], tiny())]
    results = run_experiments_parallel(jobs, max_workers=2)
    assert set(results[0].apps) == {"snappy"}
    assert set(results[1].apps) == {"memcached"}


def test_serial_fallback_single_worker():
    results = run_experiments_parallel([(GROUP, tiny())], max_workers=1)
    assert len(results) == 1
    assert results[0].completion_time("snappy") > 0


def test_experiment_job_normalization():
    job = ExperimentJob.of((["a", "b"], tiny()))
    assert job.workloads == ("a", "b")
    assert ExperimentJob.of(job) is job


def test_default_worker_count_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert default_worker_count() == 3
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert default_worker_count() == 1


# -- result snapshots ----------------------------------------------------


def test_pickle_round_trip_preserves_numbers():
    live = run_experiment(GROUP, tiny("canvas"))
    shipped = pickle.loads(pickle.dumps(live))
    assert_same_result(live, shipped)
    # The machine (engine heap, generators) is deliberately dropped.
    assert shipped.machine is None
    # Identity between the two stats views survives via the pickle memo.
    for name in GROUP:
        assert shipped.apps[name].stats is shipped.results[name].stats


def test_pickle_round_trip_is_idempotent():
    shipped = pickle.loads(pickle.dumps(run_experiment(GROUP, tiny())))
    again = pickle.loads(pickle.dumps(shipped))
    assert_same_result(shipped, again)


def test_snapshot_keeps_system_introspection():
    live = run_experiment(GROUP, tiny("canvas"))
    shipped = pickle.loads(pickle.dumps(live))
    for name in GROUP:
        assert shipped.system.adaptive_stats(name) == live.system.adaptive_stats(name)
    assert (
        shipped.system.scheduler.stats.prefetches_dropped
        == live.system.scheduler.stats.prefetches_dropped
    )


# -- persistent disk cache ----------------------------------------------


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    CACHE_STATS.reset()
    yield tmp_path / "cache"
    CACHE_STATS.reset()


def test_cache_disabled_without_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert default_disk_cache() is None
    result, source = cached_run(["snappy"], tiny())
    assert source == "simulated"
    assert result.completion_time("snappy") > 0


def test_cache_miss_then_hit(cache_dir):
    cold, source = cached_run(GROUP, tiny())
    assert source == "simulated"
    assert CACHE_STATS.misses == 1 and CACHE_STATS.stores == 1
    warm, source = cached_run(GROUP, tiny())
    assert source == "disk"
    assert CACHE_STATS.disk_hits == 1
    assert_same_result(cold, warm)


def test_cache_key_sensitive_to_config_and_workloads(cache_dir):
    base = job_key(GROUP, tiny())
    assert base == job_key(GROUP, tiny()), "key must be stable"
    assert base != job_key(GROUP, tiny(seed=1))
    assert base != job_key(GROUP, tiny("canvas"))
    assert base != job_key(list(reversed(GROUP)), tiny())
    assert base != job_key(["snappy"], tiny())


def test_cache_drops_corrupt_entries(cache_dir):
    cached_run(["snappy"], tiny())
    cache = default_disk_cache()
    (entry,) = cache.entries()
    entry.write_bytes(b"not a pickle")
    result, source = cached_run(["snappy"], tiny())
    assert source == "simulated"
    assert result.completion_time("snappy") > 0


def test_cache_clear(cache_dir):
    cached_run(["snappy"], tiny())
    cache = default_disk_cache()
    assert len(cache.entries()) == 1
    assert cache.clear() == 1
    assert cache.entries() == []


def test_parallel_workers_share_disk_cache(cache_dir):
    jobs = [(["snappy"], tiny()), (["memcached"], tiny())]
    run_experiments_parallel(jobs, max_workers=2)
    # Workers stored their results; this process now hits disk only.
    CACHE_STATS.reset()
    warm = run_experiments_parallel(jobs, max_workers=1)
    assert CACHE_STATS.disk_hits == 2 and CACHE_STATS.misses == 0
    assert warm[0].completion_time("snappy") > 0


# -- determinism: batched vs scalar stream protocol ---------------------


def test_result_digest_stable_and_sensitive():
    result = run_experiment(GROUP, tiny())
    again = run_experiment(GROUP, tiny())
    assert result_digest(result) == result_digest(again)
    other = run_experiment(GROUP, tiny(seed=1))
    assert result_digest(result) != result_digest(other)
    # The digest must survive a pickle/process boundary unchanged.
    shipped = pickle.loads(pickle.dumps(result))
    assert result_digest(shipped) == result_digest(result)


@pytest.mark.parametrize("system", ["linux", "canvas"])
def test_batched_streams_bit_identical_to_scalar(system):
    """The resident fast path may not change a single simulated number.

    A co-run that mixes native batched producers (memcached, spark_lr,
    neo4j) with the chunk_stream fallback (snappy) must produce the same
    digest with batching on and off.
    """
    corun = ["snappy", "memcached", "spark_lr", "neo4j"]
    batched = run_experiment(corun, tiny(system, batched_streams=True))
    scalar = run_experiment(corun, tiny(system, batched_streams=False))
    assert_same_result(batched, scalar)
    assert result_digest(batched) == result_digest(scalar)


def test_batched_digest_unaffected_by_profiler():
    config = tiny("canvas")
    from repro.metrics import SimProfiler

    profiler = SimProfiler()
    plain = run_experiment(GROUP, config)
    profiled = run_experiment(GROUP, tiny("canvas"), profiler=profiler)
    assert result_digest(plain) == result_digest(profiled)
    assert profiler.runs == 1
    assert profiler.wall_seconds > 0
    assert profiler.accesses == sum(
        profiled.results[name].stats.accesses for name in GROUP
    )


def test_flat_consume_core_matches_scan_core(monkeypatch):
    """The vectorized consume core and the per-page scan core are
    interchangeable on the same flat-state run: forcing every consume
    through the scan fallback may not change a single simulated number."""
    from repro.kernel.swap_system import BaseSwapSystem

    corun = ["snappy", "memcached", "spark_lr"]
    flat = run_experiment(corun, tiny("linux", batched_streams=True))

    def scan_only(self, app, batch, start, pending_cpu, flush_us):
        return self._consume_batch_scan(app, batch, start, pending_cpu, flush_us, None)

    monkeypatch.setattr(BaseSwapSystem, "consume_batch", scan_only)
    scanned = run_experiment(corun, tiny("linux", batched_streams=True))
    assert_same_result(flat, scanned)
    assert result_digest(flat) == result_digest(scanned)
