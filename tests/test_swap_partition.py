"""Unit tests for swap entries and partitions."""

import pytest

from repro.swap import SwapPartition


def test_partition_starts_all_free():
    part = SwapPartition("p", 16)
    assert part.free_count == 16
    assert part.used_count == 0
    assert part.occupancy == 0.0


def test_pop_and_push():
    part = SwapPartition("p", 4)
    entry = part.pop_free()
    assert entry.allocated
    assert part.free_count == 3
    part.push_free(entry)
    assert not entry.allocated
    assert part.free_count == 4


def test_push_resets_canvas_metadata():
    part = SwapPartition("p", 2)
    entry = part.pop_free()
    entry.reserved = True
    entry.stored_vpn = 0x42
    entry.timestamp_us = 12.0
    entry.valid = False
    part.push_free(entry)
    assert not entry.reserved
    assert entry.stored_vpn is None
    assert entry.timestamp_us is None
    assert entry.valid


def test_exhaustion_raises():
    part = SwapPartition("p", 2)
    part.pop_free()
    part.pop_free()
    with pytest.raises(RuntimeError):
        part.pop_free()


def test_double_free_rejected():
    part = SwapPartition("p", 2)
    entry = part.pop_free()
    part.push_free(entry)
    with pytest.raises(ValueError):
        part.push_free(entry)


def test_cross_partition_free_rejected():
    a = SwapPartition("a", 2)
    b = SwapPartition("b", 2)
    entry = a.pop_free()
    with pytest.raises(ValueError):
        b.push_free(entry)


def test_batch_pop():
    part = SwapPartition("p", 10)
    batch = part.pop_free_batch(4)
    assert len(batch) == 4
    assert part.free_count == 6
    assert all(e.allocated for e in batch)


def test_batch_pop_clamps_to_available():
    part = SwapPartition("p", 3)
    batch = part.pop_free_batch(10)
    assert len(batch) == 3
    assert part.free_count == 0


def test_occupancy():
    part = SwapPartition("p", 4)
    part.pop_free()
    assert part.occupancy == pytest.approx(0.25)


def test_entry_ids_unique_within_partition():
    part = SwapPartition("p", 100)
    ids = {e.entry_id for e in part.entries}
    assert len(ids) == 100


def test_invalid_size():
    with pytest.raises(ValueError):
        SwapPartition("p", 0)
