"""Behavioural tests: each Table 2 workload shows its paper-documented
access characteristics (pattern class, write intensity, locality)."""

import numpy as np
import pytest

from repro.kernel import AppContext, CgroupConfig
from repro.sim import Engine
from repro.workloads import WORKLOADS, make_workload


def materialize(name, scale=0.1, max_per_thread=400):
    workload = make_workload(name, scale=scale)
    app = AppContext(
        Engine(), CgroupConfig(name=name, n_cores=4, local_memory_pages=4096)
    )
    workload.build(app, np.random.default_rng(0))
    accesses = []
    for stream in workload.thread_streams(app, np.random.default_rng(1)):
        thread_accesses = []
        for access in stream:
            thread_accesses.append(access)
            if len(thread_accesses) >= max_per_thread:
                break
        accesses.append(thread_accesses)
    return workload, app, accesses


def write_fraction(accesses):
    flat = [a for chunk in accesses for a in chunk]
    return sum(1 for a in flat if a[1]) / len(flat)


def sequential_fraction(thread_accesses):
    """Fraction of consecutive accesses with delta +1 (per thread)."""
    deltas = [
        b[0] - a[0] for a, b in zip(thread_accesses, thread_accesses[1:])
    ]
    if not deltas:
        return 0.0
    return sum(1 for d in deltas if d == 1) / len(deltas)


# -- natives -----------------------------------------------------------------


def test_snappy_is_streaming():
    workload, app, accesses = materialize("snappy")
    assert len(accesses) == 1  # single-threaded
    # Streaming: overwhelmingly sequential within the interleaved
    # reader/writer pattern.
    assert sequential_fraction(accesses[0]) > 0.5
    # Output writes present but reads dominate 3:1.
    wf = write_fraction(accesses)
    assert 0.15 < wf < 0.4


def test_xgboost_threads_scan_disjoint_blocks():
    workload, app, accesses = materialize("xgboost")
    # Per-thread: near-perfectly sequential.
    for thread in accesses:
        assert sequential_fraction(thread) > 0.9
    # Threads start in different blocks of the matrix.
    starts = {thread[0][0] for thread in accesses}
    assert len(starts) == workload.n_threads
    # Read-dominated.
    assert write_fraction(accesses) < 0.15


def test_memcached_is_zipf_skewed():
    workload, app, accesses = materialize("memcached", max_per_thread=2000)
    flat = [a[0] for chunk in accesses for a in chunk]
    values, counts = np.unique(flat, return_counts=True)
    counts = np.sort(counts)[::-1]
    top_decile = counts[: max(1, len(counts) // 10)].sum() / counts.sum()
    assert top_decile > 0.3  # heavy head
    # ~10% sets.
    assert 0.05 < write_fraction(accesses) < 0.2


# -- managed -------------------------------------------------------------------


@pytest.mark.parametrize("name", ["spark_lr", "spark_km", "mllib_bc"])
def test_spark_scans_are_per_thread_sequential(name):
    workload, app, accesses = materialize(name)
    app_threads = accesses[: workload.n_threads]
    for thread in app_threads:
        assert sequential_fraction(thread) > 0.9
    # Shuffle/update writes are substantial but not total.
    assert 0.1 < write_fraction(app_threads) < 0.6


@pytest.mark.parametrize("name", ["spark_pr", "spark_tc", "graphx_cc", "graphx_pr", "graphx_sp"])
def test_graph_workloads_are_pointer_chasing(name):
    workload, app, accesses = materialize(name)
    app_threads = accesses[: workload.n_threads]
    for thread in app_threads:
        # Chains jump around: almost never stride-1 for long.
        assert sequential_fraction(thread) < 0.5


def test_graph_traversal_has_group_locality():
    """Consecutive chase steps stay within a 16-page group most of the
    time (allocation-site locality) while being non-sequential."""
    workload, app, accesses = materialize("graphx_cc")
    thread = accesses[0]
    same_group = 0
    for a, b in zip(thread, thread[1:]):
        if a[0] // 16 == b[0] // 16:
            same_group += 1
    assert same_group / (len(thread) - 1) > 0.5


def test_neo4j_has_hot_core():
    """Neo4j keeps ~85% of traversal steps inside a hot quarter of the
    graph ("holds much of its graph data in local memory")."""
    workload, app, accesses = materialize("neo4j", max_per_thread=2000)
    flat = [a[0] for chunk in accesses[: workload.n_threads] for a in chunk]
    _values, counts = np.unique(flat, return_counts=True)
    # The hot *set* — a quarter of the data region — absorbs almost all
    # accesses; measure mass of the top hot-set-sized page group.
    hot_set_size = max(16, int(workload.data_vma.n_pages * workload.hot_fraction))
    hot_mass = np.sort(counts)[::-1][:hot_set_size].sum() / counts.sum()
    assert hot_mass > 0.8
    # Touched pages are far fewer than the region: strong locality.
    assert len(counts) < workload.data_vma.n_pages * 0.7
    # Traversal never writes.
    assert write_fraction(accesses[: workload.n_threads]) == 0.0


def test_cassandra_mixes_reads_and_inserts():
    workload, app, accesses = materialize("cassandra")
    wf = write_fraction(accesses[: workload.n_threads])
    assert 0.35 < wf < 0.65  # 5M reads / 5M inserts


def test_spark_sg_write_heavy_and_skewed():
    workload, app, accesses = materialize("spark_sg", max_per_thread=1000)
    app_threads = accesses[: workload.n_threads]
    assert write_fraction(app_threads) > 0.45
    flat = [a[0] for chunk in app_threads for a in chunk]
    _values, counts = np.unique(flat, return_counts=True)
    counts = np.sort(counts)[::-1]
    assert counts[: max(1, len(counts) // 10)].sum() / counts.sum() > 0.25


# -- GC threads ------------------------------------------------------------------


@pytest.mark.parametrize("name", ["spark_lr", "graphx_cc", "cassandra", "neo4j"])
def test_gc_threads_are_bursty_readers(name):
    workload, app, accesses = materialize(name)
    gc_threads = accesses[workload.n_threads :]
    assert len(gc_threads) == workload.n_aux_threads
    for thread in gc_threads:
        if not thread:
            continue
        # GC never writes, and its bursts carry a large idle CPU chunk.
        assert all(not a[1] for a in thread)
        assert max(a[2] for a in thread) > 100.0


# -- cross-cutting ------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_streams_are_deterministic_per_seed(name):
    def collect():
        _w, _a, accesses = materialize(name, max_per_thread=50)
        return [a for chunk in accesses for a in chunk]

    assert collect() == collect()


def test_working_sets_reflect_paper_intensity_ordering():
    """Spark-class working sets exceed Memcached's and Snappy's, so the
    swap-throughput asymmetry of Fig. 2 has a basis."""
    sizes = {
        name: make_workload(name, scale=0.25).working_set_pages
        for name in ("spark_lr", "graphx_cc", "memcached", "snappy")
    }
    assert sizes["spark_lr"] > sizes["memcached"]
    assert sizes["graphx_cc"] > sizes["snappy"]
