"""Tests for fault-trace recording and replay."""

import pytest

from repro.harness.driver import run_to_completion, spawn_app
from repro.harness.machine import Machine
from repro.harness.trace import FaultRecord, FaultTracer, load_trace, replay_streams
from repro.kernel import AppContext, CgroupConfig, LinuxSwapSystem, SwapSystemConfig


def build(machine):
    system = LinuxSwapSystem(
        machine.engine,
        machine.nic,
        partition_pages=2048,
        telemetry=machine.telemetry,
        config=SwapSystemConfig(shared_cache_pages=128),
    )
    app = AppContext(
        machine.engine,
        CgroupConfig(name="a", n_cores=2, local_memory_pages=128),
    )
    app.space.map_region(512, name="heap")
    system.register_app(app)
    system.prepopulate(app, 0.2)
    return system, app


def run_scan(system, app, n=800):
    vpns = sorted(app.space.pages)

    def stream():
        for i in range(n):
            yield (vpns[i % len(vpns)], False, 0.5)

    proc = spawn_app(system, app, [stream()])
    run_to_completion(system.engine, [proc])


def test_tracer_records_every_fault():
    machine = Machine(seed=0)
    system, app = build(machine)
    tracer = FaultTracer(system)
    run_scan(system, app)
    assert len(tracer) == app.stats.faults
    assert all(isinstance(r, FaultRecord) for r in tracer.records)
    assert all(r.stall_us >= 0 for r in tracer.records)
    times = [r.time_us for r in tracer.records]
    assert times == sorted(times)


def test_tracer_app_filter():
    machine = Machine(seed=0)
    system, app = build(machine)
    tracer = FaultTracer(system, apps=["someone-else"])
    run_scan(system, app)
    assert len(tracer) == 0


def test_dump_and_load_roundtrip(tmp_path):
    machine = Machine(seed=0)
    system, app = build(machine)
    tracer = FaultTracer(system)
    run_scan(system, app, n=300)
    path = tmp_path / "trace.jsonl"
    written = tracer.dump(path)
    loaded = load_trace(path)
    assert written == len(loaded) == len(tracer)
    assert loaded[0] == tracer.records[0]


def test_by_app_grouping():
    machine = Machine(seed=0)
    system, app = build(machine)
    tracer = FaultTracer(system)
    run_scan(system, app, n=300)
    grouped = tracer.by_app()
    assert set(grouped) == {"a"}
    assert len(grouped["a"]) == len(tracer)


def test_replay_preserves_fault_sequence():
    machine = Machine(seed=0)
    system, app = build(machine)
    tracer = FaultTracer(system)
    run_scan(system, app, n=600)
    recorded_vpns = [r.vpn for r in tracer.records]

    # Replay the trace against a fresh system.
    machine2 = Machine(seed=1)
    system2, app2 = build(machine2)
    tracer2 = FaultTracer(system2)
    streams = replay_streams(tracer.records)
    proc = spawn_app(system2, app2, streams)
    run_to_completion(machine2.engine, [proc])
    # The replay touches exactly the recorded pages (same multiset).
    assert app2.stats.accesses == len(recorded_vpns)
    assert sorted(r.vpn for r in tracer2.records) == sorted(
        set(recorded_vpns)
    ) or app2.stats.faults <= len(recorded_vpns)


def test_replay_streams_compute_gaps_nonnegative():
    records = [
        FaultRecord(0.0, "a", 0, 10, 5.0),
        FaultRecord(20.0, "a", 0, 11, 5.0),
        FaultRecord(21.0, "a", 0, 12, 5.0),  # overlaps previous stall
    ]
    (stream,) = replay_streams(records)
    accesses = list(stream)
    assert [a[0] for a in accesses] == [10, 11, 12]
    assert all(a[2] >= 0 for a in accesses)
