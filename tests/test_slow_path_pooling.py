"""Tests for the fault slow-path pooling machinery (PR 3).

The slow path recycles three kinds of objects — park/kick ``Event``s,
``_PooledTimeout`` sleeps, and ``RdmaRequest``s — and the NIC's
batch-draining dispatch loop discards dropped requests without serving
them.  These tests pin the invariants that make the reuse safe:

* a recycled event can never deliver a wakeup to its *previous* waiter,
* ``reset()`` refuses pending or undelivered events,
* ``grant()`` skips the empty dispatch step without reordering waiters,
* pooled timeouts are actually reused and fire at the right instants,
* pooled requests leave every queue before re-entering the pool and get
  a fresh ``request_id`` on reuse,
* the dropped-request path fires the NIC hooks, counts the skip, and
  recycles pooled requests.
"""

import pytest

from repro.rdma import RNIC, RdmaOp, RdmaRequest, RequestKind
from repro.rdma.vqp import VirtualQP
from repro.sim import Engine
from repro.sim.engine import SimulationError
from repro.swap import SwapPartition
from tests.conftest import FakeOwner, pooled_request


# -- Event reset / grant invariants -------------------------------------


def test_reset_of_pending_event_rejected():
    eng = Engine()
    event = eng.event("pending")
    with pytest.raises(SimulationError):
        event.reset()


def test_reset_with_undelivered_callbacks_rejected():
    eng = Engine()
    event = eng.event("undelivered")
    event.add_callback(lambda e: None)
    event.succeed()
    # Fired but its dispatch has not run yet: resetting now would
    # silently drop the waiter.
    with pytest.raises(SimulationError):
        event.reset()


def test_reset_bumps_generation_and_allows_reuse():
    eng = Engine()
    event = eng.event("park")
    event.succeed()
    eng.run()
    gen = event.generation
    event.reset()
    assert event.generation == gen + 1
    assert not event.fired
    event.succeed()  # reusable after reset
    eng.run()
    assert event.fired


def test_grant_rejects_fired_and_subscribed_events():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.event().grant().grant()
    subscribed = eng.event()
    subscribed.add_callback(lambda e: None)
    with pytest.raises(SimulationError):
        subscribed.grant()


def test_granted_event_delivers_to_late_subscribers_in_fifo_order():
    eng = Engine()
    order = []

    def waiter(tag):
        yield eng.granted
        order.append(tag)

    eng.spawn(waiter("a"))
    eng.spawn(waiter("b"))
    eng.run()
    assert order == ["a", "b"]
    assert eng.now == 0.0


def test_recycled_event_never_wakes_previous_waiter():
    """The core pool invariant: after a park/kick round trip and reset,
    firing the event again resumes only the *new* waiter."""
    eng = Engine()
    park = eng.event("park")
    resumed = []

    def first():
        yield park
        park.reset()
        resumed.append("first")

    def second():
        # Runs after first() has consumed the first kick.
        yield eng.sleep(5.0)
        yield park
        resumed.append("second")

    eng.spawn(first())
    eng.spawn(second())
    park.succeed()
    eng.run(until=4.0)
    assert resumed == ["first"]
    eng.run(until=10.0)
    park.succeed()
    eng.run(until=20.0)
    assert resumed == ["first", "second"]


# -- Pooled timeout recycling -------------------------------------------


def test_sleep_recycles_timeout_objects():
    eng = Engine()
    seen = []

    def sleeper():
        for _ in range(3):
            timeout = eng.sleep(1.0)
            seen.append(id(timeout))
            yield timeout

    eng.spawn(sleeper())
    eng.run()
    assert eng.now == 3.0
    # A timeout re-enters the pool only after its waiter has resumed (the
    # resumption itself issues the next sleep), so one sleeping process
    # alternates between two pooled objects: the third sleep reuses the
    # first's.
    assert len(set(seen)) == 2
    assert seen[2] == seen[0]
    assert len(eng._timeout_pool) == 2


def test_pooled_sleep_wakes_at_exact_instants():
    eng = Engine()
    wakes = []

    def sleeper(delay, n):
        for _ in range(n):
            yield eng.sleep(delay)
            wakes.append((delay, eng.now))

    eng.spawn(sleeper(1.5, 2))
    eng.spawn(sleeper(2.0, 2))
    eng.run()
    assert wakes == [(1.5, 1.5), (2.0, 2.0), (1.5, 3.0), (2.0, 4.0)]


def test_pooled_sleep_rejects_negative_delay():
    eng = Engine()

    def sleeper():
        yield eng.sleep(1.0)  # seed the pool
        yield eng.sleep(-1.0)

    eng.spawn(sleeper())
    with pytest.raises(SimulationError):
        eng.run()


# -- RdmaRequest pooling -------------------------------------------------


def test_completed_request_returns_to_owner_pool():
    eng = Engine()
    nic = RNIC(eng)
    qp = nic.create_qp("q", RdmaOp.READ)
    part = SwapPartition("p", 8)
    owner = FakeOwner()
    request = pooled_request(eng, part, owner)
    first_id = request.request_id
    nic.submit(qp, request)
    eng.run()
    # Completion was dispatched through the bound request, then the
    # request re-entered the pool with its references cleared.
    assert owner.completed == [(first_id, RdmaOp.READ)]
    assert owner._request_pool == [request]
    assert request.entry is None and request.page is None
    assert not request.completion.fired  # reset, ready for reuse
    request.reuse(RdmaOp.READ, RequestKind.PREFETCH, "a", part.pop_free(), None)
    assert request.request_id != first_id  # stale-drop bookkeeping keys on id
    assert not request.dropped


def test_dropped_request_recycled_without_completion():
    eng = Engine()
    nic = RNIC(eng)
    qp = nic.create_qp("q", RdmaOp.READ)
    part = SwapPartition("p", 8)
    owner = FakeOwner()
    skipped = []
    nic.dropped_hooks.append(skipped.append)
    dropped = pooled_request(eng, part, owner, kind=RequestKind.PREFETCH)
    live = pooled_request(eng, part, owner)
    nic.submit(qp, dropped)
    nic.submit(qp, live)
    dropped.dropped = True
    eng.run()
    assert nic.stats.dropped_skipped == 1
    assert skipped == [dropped]
    # The dropped request never completed but was still recycled; the
    # live one completed and followed.
    assert owner.completed == [(live.request_id, RdmaOp.READ)]
    assert set(owner._request_pool) == {dropped, live}
    assert nic.stats.reads_completed == 1


def test_vqp_pop_recycles_dropped_pooled_requests():
    eng = Engine()
    part = SwapPartition("p", 8)
    owner = FakeOwner()
    vqp = VirtualQP(eng, "a")
    dropped = pooled_request(eng, part, owner, kind=RequestKind.PREFETCH)
    live = pooled_request(eng, part, owner, kind=RequestKind.PREFETCH)
    vqp.push(dropped)
    vqp.push(live)
    dropped.dropped = True
    assert vqp.pop(RequestKind.PREFETCH) is live
    assert vqp.dropped_total == 1
    eng.run()  # drain the immediate lane carrying the recycle
    assert owner._request_pool == [dropped]


def test_per_kind_completion_counters():
    eng = Engine()
    nic = RNIC(eng)
    read_qp = nic.create_qp("r", RdmaOp.READ)
    write_qp = nic.create_qp("w", RdmaOp.WRITE)
    part = SwapPartition("p", 16)

    def req(kind):
        op = RdmaOp.WRITE if kind is RequestKind.SWAPOUT else RdmaOp.READ
        return RdmaRequest(op, kind, "a", part.pop_free(), completion=eng.event())

    for kind, qp, n in [
        (RequestKind.DEMAND, read_qp, 3),
        (RequestKind.PREFETCH, read_qp, 2),
        (RequestKind.SWAPOUT, write_qp, 1),
    ]:
        for _ in range(n):
            nic.submit(qp, req(kind))
    eng.run()
    assert nic.stats.demand_completed == 3
    assert nic.stats.prefetch_completed == 2
    assert nic.stats.swapout_completed == 1
    assert nic.stats.reads_completed == 5
    assert nic.stats.writes_completed == 1


# -- Exact-time engine helpers (the drain's scheduling primitives) -------


def test_call_at_exact_fires_at_absolute_instants():
    eng = Engine()
    fired = []

    def proc():
        eng.call_at_exact(2.5, fired.append, "later")
        eng.call_at_exact(eng.now, fired.append, "now")
        yield eng.sleep(5.0)

    eng.spawn(proc())
    eng.run()
    assert fired == ["now", "later"]
    with pytest.raises(SimulationError):
        eng.call_at_exact(eng.now - 1.0, fired.append, "past")


def test_sleep_until_wakes_at_exact_absolute_time():
    eng = Engine()
    wakes = []

    def sleeper():
        yield eng.sleep_until(1.5)
        wakes.append(eng.now)
        yield eng.sleep_until(1.5 + 2.0)
        wakes.append(eng.now)
        # Same-instant sleep_until resumes via the immediate lane.
        yield eng.sleep_until(eng.now)
        wakes.append(eng.now)

    eng.spawn(sleeper())
    eng.run()
    assert wakes == [1.5, 3.5, 3.5]
    # The timeouts were pooled and reused like relative sleeps.
    assert len(eng._timeout_pool) >= 1


def test_sleep_until_rejects_the_past():
    eng = Engine()

    def proc():
        yield eng.sleep(2.0)
        yield eng.sleep_until(1.0)

    eng.spawn(proc())
    with pytest.raises(SimulationError):
        eng.run()


# -- Doorbell batching and the arithmetic drain --------------------------


def test_submit_many_matches_serial_submits():
    """One doorbell for a run == one submit per request, record for
    record: same stamps, same FIFO order, same completion schedule."""

    def run(batched):
        eng = Engine()
        nic = RNIC(eng)
        qp = nic.create_qp("q", RdmaOp.READ)
        part = SwapPartition("p", 32)
        owner = FakeOwner()
        requests = [pooled_request(eng, part, owner) for _ in range(6)]
        if batched:
            nic.submit_many(qp, requests)
        else:
            for request in requests:
                nic.submit(qp, request)
        eng.run()
        return eng.now, owner.completed, nic.stats

    serial_now, serial_done, serial_stats = run(batched=False)
    batch_now, batch_done, batch_stats = run(batched=True)
    assert batch_now == serial_now  # exact float identity
    assert len(batch_done) == len(serial_done) == 6
    assert batch_stats.reads_completed == serial_stats.reads_completed
    assert batch_stats.doorbells == 1 and serial_stats.doorbells == 0


def test_drain_is_bit_identical_to_per_wqe_serving():
    """The arithmetic drain (tracer off) must schedule the exact same
    completion instants as per-WQE generator serving (tracer on, which
    gates the drain off) — the permanent scalar oracle."""
    from repro.obs import TraceBuffer

    def run(drain):
        eng = Engine()
        nic = RNIC(eng)
        if not drain:
            nic.tracer = TraceBuffer(eng, capacity=4096)
        qp = nic.create_qp("q", RdmaOp.READ)
        part = SwapPartition("p", 64)
        owner = FakeOwner()
        requests = [pooled_request(eng, part, owner) for _ in range(12)]
        nic.submit_many(qp, requests)
        eng.run()
        issued = [r.issued_at_us for r in requests]
        completed = [r.completed_at_us for r in requests]
        return eng.now, issued, completed, nic.stats

    oracle_now, oracle_issued, oracle_completed, oracle_stats = run(drain=False)
    drain_now, drain_issued, drain_completed, drain_stats = run(drain=True)
    assert drain_now == oracle_now
    assert drain_issued == oracle_issued
    assert drain_completed == oracle_completed
    assert oracle_stats.drain_batches == 0
    assert drain_stats.drain_batches >= 1
    assert drain_stats.drained_serves == 11  # first serve is per-WQE


def test_drain_stops_at_a_dropped_queued_request():
    eng = Engine()
    nic = RNIC(eng)
    qp = nic.create_qp("q", RdmaOp.READ)
    part = SwapPartition("p", 32)
    owner = FakeOwner()
    requests = [pooled_request(eng, part, owner) for _ in range(4)]
    nic.submit_many(qp, requests)
    requests[2].dropped = True  # marked while queued, before dispatch
    eng.run()
    # The dropped member was peeled off by the drop-skip path, never
    # served; the rest completed and everything was recycled.
    assert nic.stats.dropped_skipped == 1
    assert nic.stats.reads_completed == 3
    assert requests[2].completed_at_us is None
    assert set(owner._request_pool) == set(requests)
