"""Tests for the experiment harness."""

import math

import pytest

from repro.harness import ExperimentConfig, run_experiment, run_individual


def small(system="linux", **kwargs):
    return ExperimentConfig(system=system, scale=0.1, **kwargs)


def test_individual_run_produces_result():
    res = run_individual("memcached", small())
    assert "memcached" in res.results
    assert res.completion_time("memcached") > 0
    assert res.apps["memcached"].stats.faults > 0


def test_corun_all_apps_finish():
    res = run_experiment(["memcached", "snappy"], small())
    for name in ("memcached", "snappy"):
        assert not math.isnan(res.completion_time(name))


def test_unknown_system_rejected():
    with pytest.raises(ValueError):
        run_individual("snappy", small(system="windows"))


def test_unknown_prefetcher_rejected():
    with pytest.raises(ValueError):
        run_individual("snappy", small(prefetcher="psychic"))


def test_cores_follow_paper_defaults():
    res = run_experiment(["spark_lr", "memcached", "snappy", "xgboost"], small())
    assert res.apps["spark_lr"].config.n_cores == 24
    assert res.apps["xgboost"].config.n_cores == 16
    assert res.apps["memcached"].config.n_cores == 4
    assert res.apps["snappy"].config.n_cores == 1


def test_cores_override():
    cfg = small(cores_override={"snappy": 8})
    res = run_individual("snappy", cfg)
    assert res.apps["snappy"].config.n_cores == 8


def test_local_memory_fraction_respected():
    cfg = small(local_memory_fraction=0.5)
    res = run_individual("memcached", cfg)
    app = res.apps["memcached"]
    ws = app.space.total_pages
    assert app.pool.capacity_pages == pytest.approx(ws * 0.5, rel=0.1)


def test_canvas_gets_private_partitions():
    res = run_experiment(["memcached", "snappy"], small(system="canvas"))
    from repro.core import CanvasSwapSystem

    assert isinstance(res.system, CanvasSwapSystem)
    assert res.system.partition_of("memcached").name == "memcached.swap"


def test_canvas_iso_disables_optimizations():
    res = run_individual("memcached", small(system="canvas-iso"))
    assert res.system.adaptive_stats("memcached") is None


def test_system_config_overrides_applied():
    cfg = small(system_config_overrides={"kswapd_batch": 2})
    res = run_individual("snappy", cfg)
    assert res.system.config.kswapd_batch == 2


def test_system_config_overrides_unknown_key():
    with pytest.raises(AttributeError):
        run_individual("snappy", small(system_config_overrides={"bogus": 1}))


def test_determinism_same_seed_same_result():
    a = run_individual("memcached", small(seed=7))
    b = run_individual("memcached", small(seed=7))
    assert a.completion_time("memcached") == b.completion_time("memcached")
    assert a.apps["memcached"].stats.faults == b.apps["memcached"].stats.faults


def test_different_seeds_differ():
    a = run_individual("memcached", small(seed=1))
    b = run_individual("memcached", small(seed=2))
    assert a.completion_time("memcached") != b.completion_time("memcached")


def test_prefetch_metrics_populated():
    res = run_individual("snappy", small())
    result = res.results["snappy"]
    assert 0.0 <= result.prefetch_contribution <= 1.0
    assert result.prefetch_accuracy >= 0.0


def test_infiniswap_system_runs():
    res = run_individual("memcached", small(system="infiniswap"))
    assert res.completion_time("memcached") > 0


def test_linux514_system_runs():
    res = run_individual("memcached", small(system="linux514"))
    assert res.completion_time("memcached") > 0


# -- Disk-cache key coverage ----------------------------------------------


def _alternates(value):
    """Candidate replacement values for one config field, by type."""
    import dataclasses

    from repro.cluster import ClusterConfig
    from repro.core.slo import SloConfig
    from repro.faults import FaultConfig
    from repro.workloads.traffic import TrafficConfig

    if isinstance(value, bool):
        return [not value]
    if isinstance(value, int):
        return [value + 1]
    if isinstance(value, float):
        return [value + 1.0, value / 2 + 0.0078125]
    if isinstance(value, str):
        pool = ["canvas", "leap", "constant", "locality"]
        return [p for p in pool if p != value] + [value + "-alt"]
    if isinstance(value, dict):
        return [dict(value, probe=1)]
    if isinstance(value, tuple):
        return [value + ((0.25, 1_000.0),), value + (1,), (1.0,)]
    if dataclasses.is_dataclass(value):
        return [None]  # the nested sweep below flips individual fields
    if value is None:
        return [1, 1.0, True, FaultConfig(), ClusterConfig(), TrafficConfig(), SloConfig()]
    return []


def test_job_key_covers_every_config_field():
    """Cache-poisoning audit: flipping any single ``ExperimentConfig``
    field — including every field of the nested fault / cluster /
    traffic / SLO configs — must yield a distinct disk-cache key.  A
    field the key ignored would let two different experiments silently
    share one cached result."""
    import dataclasses

    from repro.cluster import ClusterConfig
    from repro.core.slo import SloConfig
    from repro.faults import FaultConfig
    from repro.harness import job_key
    from repro.workloads.traffic import TrafficConfig

    base = small(
        fault_config=FaultConfig(),
        cluster=ClusterConfig(),
        traffic=TrafficConfig(),
        slo=SloConfig(),
    )
    workloads = ["memcached"]
    seen = {job_key(workloads, base)}

    def sweep(config_obj, rebuild, label):
        for field in dataclasses.fields(config_obj):
            value = getattr(config_obj, field.name)
            for candidate in _alternates(value):
                try:
                    mutated = dataclasses.replace(
                        config_obj, **{field.name: candidate}
                    )
                except (ValueError, TypeError):
                    continue  # candidate tripped config validation
                key = job_key(workloads, rebuild(mutated))
                assert key not in seen, (
                    f"{label}.{field.name} change did not change the key"
                )
                seen.add(key)
                break
            else:
                pytest.fail(f"no valid alternate value for {label}.{field.name}")

    sweep(base, lambda mutated: mutated, "ExperimentConfig")
    for attr in ("fault_config", "cluster", "traffic", "slo"):
        nested = getattr(base, attr)
        sweep(
            nested,
            lambda mutated, attr=attr: dataclasses.replace(
                base, **{attr: mutated}
            ),
            type(nested).__name__,
        )
    # Sanity: the sweep really visited every field of every layer.
    n_fields = sum(
        len(dataclasses.fields(obj))
        for obj in (base, base.fault_config, base.cluster, base.traffic, base.slo)
    )
    assert len(seen) == 1 + n_fields
